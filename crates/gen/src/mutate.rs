//! Deterministic mutation operators over generated workloads.
//!
//! The adversarial fuzzer (crate `cpg-fuzz`) explores the merger's behavior
//! space by perturbing *real* workloads instead of sampling fresh random
//! systems: a [`Workload`] is a [`GeneratorConfig`] plus an ordered list of
//! [`WorkloadOp`] mutations and [`EditOp`] session edits.
//! [`Workload::materialize`] replays the unexpanded base graph of
//! [`generate_unexpanded`](crate::generate_unexpanded) through a fresh
//! builder with the mutations applied, so the same workload value always
//! produces bit-identical systems — the offender corpus stores workloads,
//! never graphs.
//!
//! Every operator is total over its `u64` payloads: slots are resolved
//! modulo the relevant entity count, so any byte soup decodes into an
//! applicable operation. Mutations that produce structurally invalid graphs
//! (cycles, broken branch polarities, missing buses) surface as a benign
//! [`MaterializeError`] rather than a panic; the deliberately *unvalidated*
//! corner is [`WorkloadOp::DropProcessingElements`], which swaps in a
//! truncated architecture after expansion and thereby exercises the typed
//! [`validate_system`](../../cpg_merge/fn.validate_system.html) rejection
//! path of the merger.

use std::fmt;
use std::hash::Hasher;

use cpg::{
    expand_communications, BuildCpgError, BusPolicy, CondId, CpgBuilder, Cube, EditError,
    ExpandError, FrontierHasher, ProcessId, ProcessKind, SystemEdit,
};
use cpg_arch::{Architecture, BuildArchitectureError, PeId, PeKind, Time};

use crate::config::GeneratorConfig;
use crate::generator::{architecture, generate_unexpanded, GeneratedSystem};

/// One mutation applied while re-materializing a workload.
///
/// Slot payloads are resolved modulo the count of the entity they index
/// (ordinary processes in id order, computation elements in architecture
/// order, declared conditions in id order), so every operation applies to
/// every workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Set the execution time of the `slot`-th ordinary process to
    /// `units` time units (clamped to at least 1).
    ExecTime {
        /// Ordinary-process slot (modulo the process count).
        slot: u64,
        /// New worst-case execution time in units.
        units: u64,
    },
    /// Remap the `slot`-th ordinary process onto the `pe_slot`-th
    /// computation element of the (possibly squeezed) architecture.
    Remap {
        /// Ordinary-process slot (modulo the process count).
        slot: u64,
        /// Computation-element slot (modulo the element count).
        pe_slot: u64,
    },
    /// Shrink the architecture to at most `processors` programmable
    /// processors (never below 1); processes mapped to dropped processors
    /// fold back onto the survivors.
    SqueezeProcessors {
        /// New processor-count ceiling.
        processors: u64,
    },
    /// Shrink the architecture to at most `buses` shared buses (never below
    /// 1), squeezing communication bandwidth.
    SqueezeBuses {
        /// New bus-count ceiling.
        buses: u64,
    },
    /// After expansion, swap in an architecture truncated to the first
    /// `keep` processing elements *without* remapping anything — the
    /// invalid-input corner that must be rejected with a typed error, not a
    /// panic.
    DropProcessingElements {
        /// Number of leading elements to keep (modulo the element count,
        /// never below 1).
        keep: u64,
    },
    /// Add a simple data dependency between two distinct processes, oriented
    /// along the base graph's topological order so the edge alone never
    /// introduces a cycle.
    AddDependency {
        /// First endpoint slot (modulo the process count).
        from_slot: u64,
        /// Second endpoint slot (modulo the process count).
        to_slot: u64,
        /// Communication-time payload (mapped into `1..=max_comm_time`).
        comm: u64,
    },
    /// Remove the `slot`-th removable (simple, non-conditional) dependency
    /// edge.
    RemoveDependency {
        /// Removable-edge slot (modulo the removable-edge count).
        slot: u64,
    },
    /// Conjoin one more condition literal onto the guard of the `slot`-th
    /// ordinary process after expansion, re-nesting it one branch deeper
    /// (possibly to an unsatisfiable guard).
    RenestGuard {
        /// Ordinary-process slot (modulo the process count).
        slot: u64,
        /// Condition slot (modulo the declared-condition count).
        cond_slot: u64,
        /// Polarity of the conjoined literal.
        value: bool,
    },
}

/// One [`SystemEdit`] to feed a [`MergeSession`](../../cpg_merge/struct.MergeSession.html),
/// expressed in the same slot form as [`WorkloadOp`] so edit sequences shrink
/// and replay alongside the graph mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Re-estimate the execution time of the `slot`-th ordinary process.
    ExecTime {
        /// Ordinary-process slot (modulo the process count).
        slot: u64,
        /// New worst-case execution time in units (clamped to at least 1).
        units: u64,
    },
    /// Move the `slot`-th ordinary process to another computation element.
    Remap {
        /// Ordinary-process slot (modulo the process count).
        slot: u64,
        /// Computation-element slot (modulo the element count).
        pe_slot: u64,
    },
    /// Tighten the guard of the `slot`-th ordinary process by one literal.
    TightenGuard {
        /// Ordinary-process slot (modulo the process count).
        slot: u64,
        /// Condition slot (modulo the declared-condition count).
        cond_slot: u64,
        /// Polarity of the conjoined literal.
        value: bool,
    },
}

/// Why a workload failed to materialize.
///
/// All variants are *benign* from the fuzzer's point of view: the mutation
/// produced a system the public constructors are documented to reject, so
/// the workload is discarded rather than reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaterializeError {
    /// The mutated graph violates a structural rule of the paper.
    Build(BuildCpgError),
    /// Communication expansion failed (e.g. no usable bus after a squeeze).
    Expand(ExpandError),
    /// The truncated architecture cannot be built.
    Arch(BuildArchitectureError),
    /// A post-expansion guard edit was rejected.
    Edit(EditError),
}

impl fmt::Display for MaterializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaterializeError::Build(err) => write!(f, "mutated graph is invalid: {err}"),
            MaterializeError::Expand(err) => write!(f, "mutated graph does not expand: {err}"),
            MaterializeError::Arch(err) => write!(f, "truncated architecture is invalid: {err}"),
            MaterializeError::Edit(err) => write!(f, "guard re-nesting rejected: {err}"),
        }
    }
}

impl std::error::Error for MaterializeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MaterializeError::Build(err) => Some(err),
            MaterializeError::Expand(err) => Some(err),
            MaterializeError::Arch(err) => Some(err),
            MaterializeError::Edit(err) => Some(err),
        }
    }
}

/// A reproducible adversarial workload: a generator configuration plus the
/// mutation and edit sequences to apply on top of it.
///
/// # Example
///
/// ```
/// use cpg_gen::{GeneratorConfig, Workload, WorkloadOp};
///
/// let mut workload = Workload::new(GeneratorConfig::new(20, 4).with_seed(7));
/// workload.ops.push(WorkloadOp::SqueezeProcessors { processors: 2 });
/// let a = workload.materialize().unwrap();
/// let b = workload.materialize().unwrap();
/// assert_eq!(
///     cpg_gen::system_fingerprint(&a),
///     cpg_gen::system_fingerprint(&b),
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The base system configuration (seed included).
    pub config: GeneratorConfig,
    /// Graph/architecture mutations, applied in order during materialization.
    pub ops: Vec<WorkloadOp>,
    /// Session edits to apply through a `MergeSession` after the initial
    /// merge, resolved against the materialized system by [`session_edits`]
    /// (Workload::session_edits).
    pub edits: Vec<EditOp>,
}

impl Workload {
    /// An unmutated workload over `config`.
    #[must_use]
    pub fn new(config: GeneratorConfig) -> Self {
        Workload {
            config,
            ops: Vec::new(),
            edits: Vec::new(),
        }
    }

    /// Materializes the workload into a concrete system.
    ///
    /// The base graph is regenerated unexpanded from the configuration seed
    /// and replayed through a fresh builder with all mutations applied; two
    /// calls on the same workload always return bit-identical systems.
    ///
    /// # Errors
    ///
    /// Returns a [`MaterializeError`] when a mutation produces a system that
    /// the graph/architecture constructors reject; see the error type.
    ///
    /// # Panics
    ///
    /// Panics under the same node-budget condition as [`crate::generate`].
    pub fn materialize(&self) -> Result<GeneratedSystem, MaterializeError> {
        let (base_arch, base) = generate_unexpanded(&self.config);

        // Resolve the architecture squeezes first: mappings are folded onto
        // the squeezed computation elements during replay.
        let mut processors = self.config.processors().max(1);
        let mut buses = self.config.buses().max(1);
        for op in &self.ops {
            match *op {
                WorkloadOp::SqueezeProcessors {
                    processors: ceiling,
                } => {
                    processors = (ceiling as usize).clamp(1, processors);
                }
                WorkloadOp::SqueezeBuses { buses: ceiling } => {
                    buses = (ceiling as usize).clamp(1, buses);
                }
                _ => {}
            }
        }
        let arch = architecture(processors, buses);
        let base_computation: Vec<PeId> = base_arch.computation_elements().collect();
        let computation: Vec<PeId> = arch.computation_elements().collect();

        // Per-process overrides (last op wins).
        let users: Vec<ProcessId> = base
            .processes()
            .filter(|(_, process)| !process.kind().is_dummy())
            .map(|(id, _)| id)
            .collect();
        let slots = users.len() as u64;
        let mut exec_override: Vec<Option<Time>> = vec![None; users.len()];
        let mut map_override: Vec<Option<PeId>> = vec![None; users.len()];
        for op in &self.ops {
            match *op {
                WorkloadOp::ExecTime { slot, units } => {
                    exec_override[(slot % slots) as usize] = Some(Time::new(units.max(1)));
                }
                WorkloadOp::Remap { slot, pe_slot } => {
                    map_override[(slot % slots) as usize] =
                        Some(computation[(pe_slot as usize) % computation.len()]);
                }
                _ => {}
            }
        }

        // Dependency edits over the user-to-user edges; edges to the dummy
        // source/sink are re-derived by the builder.
        let mut kept: Vec<(ProcessId, ProcessId, Option<cpg::Literal>, Time)> = base
            .edges()
            .iter()
            .filter(|edge| {
                !base.process(edge.from()).kind().is_dummy()
                    && !base.process(edge.to()).kind().is_dummy()
            })
            .map(|edge| (edge.from(), edge.to(), edge.condition(), edge.comm_time()))
            .collect();
        let mut position = vec![0usize; base.len()];
        for (pos, &id) in base.topological_order().iter().enumerate() {
            position[id.index()] = pos;
        }
        for op in &self.ops {
            match *op {
                WorkloadOp::RemoveDependency { slot } => {
                    let removable: Vec<usize> = kept
                        .iter()
                        .enumerate()
                        .filter(|(_, edge)| edge.2.is_none())
                        .map(|(i, _)| i)
                        .collect();
                    if let Some(&index) = removable.get((slot as usize) % removable.len().max(1)) {
                        kept.remove(index);
                    }
                }
                WorkloadOp::AddDependency {
                    from_slot,
                    to_slot,
                    comm,
                } => {
                    let a = users[(from_slot % slots) as usize];
                    let b = users[(to_slot % slots) as usize];
                    if a == b {
                        continue;
                    }
                    let (from, to) = if position[a.index()] < position[b.index()] {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    let comm = Time::new(1 + comm % self.config.max_comm_time().max(1));
                    kept.push((from, to, None, comm));
                }
                _ => {}
            }
        }

        // Builder replay: user processes keep their creation-order ids, the
        // builder re-appends the dummy source/sink after them.
        let mut builder = CpgBuilder::new();
        for cond in base.conditions() {
            builder.condition(base.condition_name(cond).to_owned());
        }
        for (index, &id) in users.iter().enumerate() {
            let process = base.process(id);
            let exec = exec_override[index].unwrap_or_else(|| base.exec_time(id));
            let mapping = map_override[index].unwrap_or_else(|| {
                let pos = base_computation
                    .iter()
                    .position(|&pe| base.mapping(id) == Some(pe))
                    .expect("unexpanded processes are mapped onto computation elements");
                computation[pos % computation.len()]
            });
            let replayed = builder.process(process.name().to_owned(), exec, mapping);
            debug_assert_eq!(replayed, id);
            if process.is_conjunction() {
                builder.mark_conjunction(replayed);
            }
        }
        for (from, to, condition, comm) in kept {
            match condition {
                Some(literal) => builder.conditional_edge(from, to, literal, comm),
                None => builder.simple_edge(from, to, comm),
            }
        }
        let cpg = builder.build(&arch).map_err(MaterializeError::Build)?;
        let mut cpg = expand_communications(&cpg, &arch, BusPolicy::RoundRobin)
            .map_err(MaterializeError::Expand)?;

        // Post-expansion mutations.
        let ordinary: Vec<ProcessId> = cpg.ordinary_processes().collect();
        let mut arch = arch;
        for op in &self.ops {
            match *op {
                WorkloadOp::RenestGuard {
                    slot,
                    cond_slot,
                    value,
                } => {
                    if cpg.num_conditions() == 0 {
                        continue;
                    }
                    let process = ordinary[(slot as usize) % ordinary.len()];
                    let cond = CondId::new((cond_slot as usize) % cpg.num_conditions());
                    let guard = cpg
                        .guard(process)
                        .and_cube(&Cube::from(cond.literal(value)));
                    cpg.set_guard(process, guard)
                        .map_err(MaterializeError::Edit)?;
                }
                WorkloadOp::DropProcessingElements { keep } => {
                    let keep = ((keep as usize) % arch.len()).max(1);
                    if keep == arch.len() {
                        continue;
                    }
                    let mut truncated = Architecture::builder();
                    for id in arch.ids().take(keep) {
                        let name = arch.pe(id).name().to_owned();
                        truncated = match arch.kind_of(id) {
                            PeKind::Programmable => truncated.processor(name),
                            PeKind::Hardware => truncated.hardware(name),
                            PeKind::Bus => truncated.bus(name),
                        };
                    }
                    arch = truncated.build().map_err(MaterializeError::Arch)?;
                }
                _ => {}
            }
        }

        Ok(GeneratedSystem::from_parts(arch, cpg, self.config.clone()))
    }

    /// Resolves the edit sequence against a materialized system.
    ///
    /// Edits whose entity class is empty on this system (no conditions
    /// declared, say) resolve to nothing and are skipped.
    #[must_use]
    pub fn session_edits(&self, system: &GeneratedSystem) -> Vec<SystemEdit> {
        let cpg = system.cpg();
        let ordinary: Vec<ProcessId> = cpg.ordinary_processes().collect();
        let computation: Vec<PeId> = system.arch().computation_elements().collect();
        let mut edits = Vec::new();
        for edit in &self.edits {
            match *edit {
                EditOp::ExecTime { slot, units } => {
                    if ordinary.is_empty() {
                        continue;
                    }
                    edits.push(SystemEdit::ExecTime {
                        process: ordinary[(slot as usize) % ordinary.len()],
                        time: Time::new(units.max(1)),
                    });
                }
                EditOp::Remap { slot, pe_slot } => {
                    if ordinary.is_empty() || computation.is_empty() {
                        continue;
                    }
                    edits.push(SystemEdit::Mapping {
                        process: ordinary[(slot as usize) % ordinary.len()],
                        pe: computation[(pe_slot as usize) % computation.len()],
                    });
                }
                EditOp::TightenGuard {
                    slot,
                    cond_slot,
                    value,
                } => {
                    if ordinary.is_empty() || cpg.num_conditions() == 0 {
                        continue;
                    }
                    let process = ordinary[(slot as usize) % ordinary.len()];
                    let cond = CondId::new((cond_slot as usize) % cpg.num_conditions());
                    edits.push(SystemEdit::Guard {
                        process,
                        guard: cpg
                            .guard(process)
                            .and_cube(&Cube::from(cond.literal(value))),
                    });
                }
            }
        }
        edits
    }

    /// Encodes the mutation sequence as space-separated tokens.
    #[must_use]
    pub fn encode_ops(&self) -> String {
        join_tokens(self.ops.iter().map(ToString::to_string))
    }

    /// Encodes the edit sequence as space-separated tokens.
    #[must_use]
    pub fn encode_edits(&self) -> String {
        join_tokens(self.edits.iter().map(ToString::to_string))
    }

    /// Decodes a mutation sequence produced by [`encode_ops`]
    /// (Workload::encode_ops). Returns `None` on the first malformed token.
    #[must_use]
    pub fn parse_ops(text: &str) -> Option<Vec<WorkloadOp>> {
        text.split_whitespace().map(WorkloadOp::parse).collect()
    }

    /// Decodes an edit sequence produced by [`encode_edits`]
    /// (Workload::encode_edits). Returns `None` on the first malformed token.
    #[must_use]
    pub fn parse_edits(text: &str) -> Option<Vec<EditOp>> {
        text.split_whitespace().map(EditOp::parse).collect()
    }
}

fn join_tokens(tokens: impl Iterator<Item = String>) -> String {
    tokens.collect::<Vec<_>>().join(" ")
}

impl fmt::Display for WorkloadOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WorkloadOp::ExecTime { slot, units } => write!(f, "exec:{slot}:{units}"),
            WorkloadOp::Remap { slot, pe_slot } => write!(f, "remap:{slot}:{pe_slot}"),
            WorkloadOp::SqueezeProcessors { processors } => write!(f, "procs:{processors}"),
            WorkloadOp::SqueezeBuses { buses } => write!(f, "buses:{buses}"),
            WorkloadOp::DropProcessingElements { keep } => write!(f, "drop:{keep}"),
            WorkloadOp::AddDependency {
                from_slot,
                to_slot,
                comm,
            } => write!(f, "adddep:{from_slot}:{to_slot}:{comm}"),
            WorkloadOp::RemoveDependency { slot } => write!(f, "rmdep:{slot}"),
            WorkloadOp::RenestGuard {
                slot,
                cond_slot,
                value,
            } => write!(f, "guard:{slot}:{cond_slot}:{}", u8::from(value)),
        }
    }
}

impl WorkloadOp {
    /// Parses one token of the [`fmt::Display`] encoding.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        let mut parts = token.split(':');
        let kind = parts.next()?;
        let mut next = || parts.next()?.parse::<u64>().ok();
        let op = match kind {
            "exec" => WorkloadOp::ExecTime {
                slot: next()?,
                units: next()?,
            },
            "remap" => WorkloadOp::Remap {
                slot: next()?,
                pe_slot: next()?,
            },
            "procs" => WorkloadOp::SqueezeProcessors {
                processors: next()?,
            },
            "buses" => WorkloadOp::SqueezeBuses { buses: next()? },
            "drop" => WorkloadOp::DropProcessingElements { keep: next()? },
            "adddep" => WorkloadOp::AddDependency {
                from_slot: next()?,
                to_slot: next()?,
                comm: next()?,
            },
            "rmdep" => WorkloadOp::RemoveDependency { slot: next()? },
            "guard" => WorkloadOp::RenestGuard {
                slot: next()?,
                cond_slot: next()?,
                value: next()? != 0,
            },
            _ => return None,
        };
        parts.next().is_none().then_some(op)
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EditOp::ExecTime { slot, units } => write!(f, "exec:{slot}:{units}"),
            EditOp::Remap { slot, pe_slot } => write!(f, "remap:{slot}:{pe_slot}"),
            EditOp::TightenGuard {
                slot,
                cond_slot,
                value,
            } => write!(f, "guard:{slot}:{cond_slot}:{}", u8::from(value)),
        }
    }
}

impl EditOp {
    /// Parses one token of the [`fmt::Display`] encoding.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        let mut parts = token.split(':');
        let kind = parts.next()?;
        let mut next = || parts.next()?.parse::<u64>().ok();
        let op = match kind {
            "exec" => EditOp::ExecTime {
                slot: next()?,
                units: next()?,
            },
            "remap" => EditOp::Remap {
                slot: next()?,
                pe_slot: next()?,
            },
            "guard" => EditOp::TightenGuard {
                slot: next()?,
                cond_slot: next()?,
                value: next()? != 0,
            },
            _ => return None,
        };
        parts.next().is_none().then_some(op)
    }
}

/// A deterministic FNV-1a fingerprint of a materialized system: architecture
/// layout, processes (name, kind, time, mapping, guard), edges and declared
/// conditions. Two systems with equal fingerprints are bit-identical merge
/// inputs; the double-run determinism tests compare these.
#[must_use]
pub fn system_fingerprint(system: &GeneratedSystem) -> u64 {
    let mut hasher = FrontierHasher::new();
    let arch = system.arch();
    let cpg = system.cpg();
    hasher.write_u64(arch.len() as u64);
    for id in arch.ids() {
        hasher.write_u8(match arch.kind_of(id) {
            PeKind::Programmable => 0,
            PeKind::Hardware => 1,
            PeKind::Bus => 2,
        });
        hasher.write(arch.pe(id).name().as_bytes());
    }
    hasher.write_u64(cpg.num_conditions() as u64);
    hasher.write_u64(cpg.len() as u64);
    for (id, process) in cpg.processes() {
        hasher.write(process.name().as_bytes());
        hasher.write_u8(match process.kind() {
            ProcessKind::Source => 0,
            ProcessKind::Sink => 1,
            ProcessKind::Ordinary => 2,
            ProcessKind::Communication => 3,
        });
        hasher.write_u64(cpg.exec_time(id).as_u64());
        hasher.write_u64(cpg.mapping(id).map_or(u64::MAX, |pe| pe.index() as u64));
        hasher.write_u8(u8::from(process.is_conjunction()));
        for cube in process.guard().cubes() {
            for literal in cube.literals() {
                hasher.write_u64(literal.cond().index() as u64);
                hasher.write_u8(u8::from(literal.value()));
            }
            hasher.write_u8(0xfe);
        }
        hasher.write_u8(0xff);
    }
    for edge in cpg.edges() {
        hasher.write_u64(edge.from().index() as u64);
        hasher.write_u64(edge.to().index() as u64);
        match edge.condition() {
            Some(literal) => {
                hasher.write_u64(literal.cond().index() as u64);
                hasher.write_u8(u8::from(literal.value()));
            }
            None => hasher.write_u8(2),
        }
        hasher.write_u64(edge.comm_time().as_u64());
        hasher.write_u64(edge.via().map_or(u64::MAX, |pe| pe.index() as u64));
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn base_config() -> GeneratorConfig {
        GeneratorConfig::new(24, 4).with_processors(3).with_seed(11)
    }

    #[test]
    fn unmutated_workload_matches_generate() {
        let config = base_config();
        let workload = Workload::new(config.clone());
        let replayed = workload.materialize().unwrap();
        let direct = generate(&config);
        assert_eq!(
            system_fingerprint(&replayed),
            system_fingerprint(&direct),
            "replaying zero mutations must reproduce the generator output"
        );
    }

    #[test]
    fn materialization_is_deterministic() {
        let mut workload = Workload::new(base_config());
        workload.ops = vec![
            WorkloadOp::ExecTime { slot: 3, units: 99 },
            WorkloadOp::Remap {
                slot: 5,
                pe_slot: 1,
            },
            WorkloadOp::SqueezeProcessors { processors: 2 },
            WorkloadOp::AddDependency {
                from_slot: 2,
                to_slot: 9,
                comm: 7,
            },
            WorkloadOp::RemoveDependency { slot: 4 },
            WorkloadOp::RenestGuard {
                slot: 6,
                cond_slot: 0,
                value: true,
            },
        ];
        let a = workload.materialize().unwrap();
        let b = workload.materialize().unwrap();
        assert_eq!(system_fingerprint(&a), system_fingerprint(&b));
    }

    #[test]
    fn exec_time_override_lands_on_the_resolved_slot() {
        let mut workload = Workload::new(base_config());
        workload
            .ops
            .push(WorkloadOp::ExecTime { slot: 3, units: 77 });
        let system = workload.materialize().unwrap();
        let process = system.cpg().ordinary_processes().nth(3).unwrap();
        assert_eq!(system.cpg().exec_time(process), Time::new(77));
    }

    #[test]
    fn squeezes_fold_mappings_onto_surviving_elements() {
        let mut workload = Workload::new(base_config());
        workload
            .ops
            .push(WorkloadOp::SqueezeProcessors { processors: 1 });
        let system = workload.materialize().unwrap();
        assert_eq!(system.arch().processors().count(), 1);
        for process in system.cpg().ordinary_processes() {
            let pe = system.cpg().mapping(process).unwrap();
            assert!(system.arch().kind_of(pe).is_computation());
        }
    }

    #[test]
    fn dropping_elements_leaves_dangling_mappings() {
        let mut workload = Workload::new(base_config());
        workload
            .ops
            .push(WorkloadOp::DropProcessingElements { keep: 1 });
        let system = workload.materialize().unwrap();
        assert_eq!(system.arch().len(), 1);
        let dangling = system
            .cpg()
            .schedulable_processes()
            .filter_map(|p| system.cpg().mapping(p))
            .any(|pe| pe.index() >= system.arch().len());
        assert!(dangling, "dropping elements must orphan some mapping");
    }

    #[test]
    fn session_edits_resolve_against_the_system() {
        let mut workload = Workload::new(base_config());
        workload.edits = vec![
            EditOp::ExecTime { slot: 0, units: 5 },
            EditOp::Remap {
                slot: 1,
                pe_slot: 0,
            },
            EditOp::TightenGuard {
                slot: 2,
                cond_slot: 1,
                value: false,
            },
        ];
        let system = workload.materialize().unwrap();
        let edits = workload.session_edits(&system);
        assert_eq!(edits.len(), 3);
        for edit in &edits {
            assert!(!system.cpg().process(edit.process()).kind().is_dummy());
        }
    }

    #[test]
    fn op_tokens_round_trip() {
        let ops = vec![
            WorkloadOp::ExecTime { slot: 1, units: 2 },
            WorkloadOp::Remap {
                slot: 3,
                pe_slot: 4,
            },
            WorkloadOp::SqueezeProcessors { processors: 5 },
            WorkloadOp::SqueezeBuses { buses: 6 },
            WorkloadOp::DropProcessingElements { keep: 7 },
            WorkloadOp::AddDependency {
                from_slot: 8,
                to_slot: 9,
                comm: 10,
            },
            WorkloadOp::RemoveDependency { slot: 11 },
            WorkloadOp::RenestGuard {
                slot: 12,
                cond_slot: 13,
                value: true,
            },
        ];
        let mut workload = Workload::new(base_config());
        workload.ops = ops.clone();
        workload.edits = vec![
            EditOp::ExecTime { slot: 1, units: 2 },
            EditOp::Remap {
                slot: 3,
                pe_slot: 4,
            },
            EditOp::TightenGuard {
                slot: 5,
                cond_slot: 6,
                value: false,
            },
        ];
        assert_eq!(
            Workload::parse_ops(&workload.encode_ops()),
            Some(workload.ops.clone())
        );
        assert_eq!(
            Workload::parse_edits(&workload.encode_edits()),
            Some(workload.edits.clone())
        );
        assert_eq!(WorkloadOp::parse("nonsense"), None);
        assert_eq!(WorkloadOp::parse("exec:1"), None);
        assert_eq!(WorkloadOp::parse("exec:1:2:3"), None);
        assert_eq!(EditOp::parse("drop:1"), None);
    }
}
