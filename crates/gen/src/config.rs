//! Configuration of the random conditional-process-graph generator.

use cpg_arch::Time;

/// Distribution used to draw process execution times.
///
/// The paper's experimental evaluation assigns execution times "randomly
/// using both uniform and exponential distribution".
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ExecTimeDistribution {
    /// Uniform over `[min, max]` (inclusive).
    Uniform {
        /// Smallest execution time.
        min: u64,
        /// Largest execution time.
        max: u64,
    },
    /// Exponential with the given mean, rounded up to at least one time unit.
    Exponential {
        /// Mean execution time.
        mean: f64,
    },
}

impl Default for ExecTimeDistribution {
    fn default() -> Self {
        ExecTimeDistribution::Uniform { min: 2, max: 20 }
    }
}

/// Parameters of one randomly generated system (graph + architecture).
///
/// The defaults correspond to a mid-sized instance of the paper's experiment:
/// 80 ordinary processes, 12 alternative paths, three programmable processors
/// plus one ASIC, two buses and uniformly distributed execution times.
///
/// # Example
///
/// ```
/// use cpg_gen::{ExecTimeDistribution, GeneratorConfig};
///
/// let config = GeneratorConfig::new(60, 10)
///     .with_processors(5)
///     .with_buses(2)
///     .with_distribution(ExecTimeDistribution::Exponential { mean: 12.0 });
/// assert_eq!(config.nodes(), 60);
/// assert_eq!(config.target_paths(), 10);
/// assert_eq!(config.processors(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    nodes: usize,
    target_paths: usize,
    processors: usize,
    buses: usize,
    distribution: ExecTimeDistribution,
    max_comm_time: u64,
    broadcast_time: Time,
    seed: u64,
}

impl GeneratorConfig {
    /// Creates a configuration for `nodes` ordinary processes and a target of
    /// `target_paths` alternative paths.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `target_paths == 0`.
    #[must_use]
    pub fn new(nodes: usize, target_paths: usize) -> Self {
        assert!(nodes > 0, "a generated graph needs at least one process");
        assert!(
            target_paths > 0,
            "a graph has at least one alternative path"
        );
        GeneratorConfig {
            nodes,
            target_paths,
            processors: 3,
            buses: 2,
            distribution: ExecTimeDistribution::default(),
            max_comm_time: 5,
            broadcast_time: Time::new(1),
            seed: 0,
        }
    }

    /// Number of ordinary processes (before communication expansion).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Desired number of alternative paths through the graph.
    #[must_use]
    pub fn target_paths(&self) -> usize {
        self.target_paths
    }

    /// Number of programmable processors of the target architecture.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Number of shared buses of the target architecture.
    #[must_use]
    pub fn buses(&self) -> usize {
        self.buses
    }

    /// Distribution of process execution times.
    #[must_use]
    pub fn distribution(&self) -> ExecTimeDistribution {
        self.distribution
    }

    /// Largest communication time drawn for inter-processor edges.
    #[must_use]
    pub fn max_comm_time(&self) -> u64 {
        self.max_comm_time
    }

    /// Condition broadcast time `τ0` (at most the smallest communication
    /// time, as assumed by the paper).
    #[must_use]
    pub fn broadcast_time(&self) -> Time {
        self.broadcast_time
    }

    /// Seed of the pseudo-random generator (same seed, same system).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the number of programmable processors (the architecture always
    /// additionally contains one ASIC).
    #[must_use]
    pub fn with_processors(mut self, processors: usize) -> Self {
        self.processors = processors.max(1);
        self
    }

    /// Sets the number of shared buses.
    #[must_use]
    pub fn with_buses(mut self, buses: usize) -> Self {
        self.buses = buses.max(1);
        self
    }

    /// Sets the execution-time distribution.
    #[must_use]
    pub fn with_distribution(mut self, distribution: ExecTimeDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Sets the largest communication time drawn for inter-processor edges.
    #[must_use]
    pub fn with_max_comm_time(mut self, max_comm_time: u64) -> Self {
        self.max_comm_time = max_comm_time.max(1);
        self
    }

    /// Sets the condition broadcast time `τ0`.
    #[must_use]
    pub fn with_broadcast_time(mut self, broadcast_time: Time) -> Self {
        self.broadcast_time = broadcast_time;
        self
    }

    /// Sets the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::new(80, 12)
    }
}

/// The experiment suite of the paper's Section 6: graphs of 60, 80 and 120
/// nodes with 10, 12, 18, 24 or 32 alternative paths, uniform and exponential
/// execution times, and architectures of one ASIC, one to eleven processors
/// and one to eight buses.
///
/// `graphs_per_size` controls how many graphs are generated per node count
/// (the paper uses 360, i.e. 1080 graphs in total); the graphs cycle through
/// the path counts, the two distributions and a spread of architectures.
#[must_use]
pub fn paper_suite(graphs_per_size: usize) -> Vec<GeneratorConfig> {
    let sizes = [60usize, 80, 120];
    let paths = [10usize, 12, 18, 24, 32];
    let mut configs = Vec::with_capacity(sizes.len() * graphs_per_size);
    for &size in &sizes {
        for i in 0..graphs_per_size {
            let target_paths = paths[i % paths.len()];
            let distribution = if (i / paths.len()) % 2 == 0 {
                ExecTimeDistribution::Uniform { min: 2, max: 20 }
            } else {
                ExecTimeDistribution::Exponential { mean: 10.0 }
            };
            let processors = 1 + (i % 11);
            let buses = 1 + (i % 8);
            configs.push(
                GeneratorConfig::new(size, target_paths)
                    .with_processors(processors)
                    .with_buses(buses)
                    .with_distribution(distribution)
                    .with_seed((size as u64) << 32 | i as u64),
            );
        }
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reasonable() {
        let config = GeneratorConfig::default();
        assert_eq!(config.nodes(), 80);
        assert_eq!(config.target_paths(), 12);
        assert!(config.processors() >= 1);
        assert!(config.buses() >= 1);
        assert_eq!(config.broadcast_time(), Time::new(1));
    }

    #[test]
    fn builder_methods_clamp_to_valid_values() {
        let config = GeneratorConfig::new(10, 2)
            .with_processors(0)
            .with_buses(0)
            .with_max_comm_time(0);
        assert_eq!(config.processors(), 1);
        assert_eq!(config.buses(), 1);
        assert_eq!(config.max_comm_time(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_nodes_is_rejected() {
        let _ = GeneratorConfig::new(0, 1);
    }

    #[test]
    fn paper_suite_covers_sizes_paths_and_distributions() {
        let suite = paper_suite(20);
        assert_eq!(suite.len(), 60);
        for size in [60, 80, 120] {
            assert_eq!(suite.iter().filter(|c| c.nodes() == size).count(), 20);
        }
        for paths in [10, 12, 18, 24, 32] {
            assert!(suite.iter().any(|c| c.target_paths() == paths));
        }
        assert!(suite
            .iter()
            .any(|c| matches!(c.distribution(), ExecTimeDistribution::Exponential { .. })));
        assert!(suite
            .iter()
            .any(|c| matches!(c.distribution(), ExecTimeDistribution::Uniform { .. })));
        // Seeds are distinct, so graphs differ.
        let seeds: std::collections::HashSet<_> = suite.iter().map(|c| c.seed()).collect();
        assert_eq!(seeds.len(), suite.len());
    }
}
