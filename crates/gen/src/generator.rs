//! Random generation of conditional process graphs and target architectures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cpg::{enumerate_tracks, expand_communications, BusPolicy, Cpg, CpgBuilder, Cube, ProcessId};
use cpg_arch::{Architecture, PeId, Time};

use crate::config::{ExecTimeDistribution, GeneratorConfig};

/// A randomly generated system: target architecture plus conditional process
/// graph (with communication processes already inserted).
///
/// # Example
///
/// ```
/// use cpg::enumerate_tracks;
/// use cpg_gen::{generate, GeneratorConfig};
///
/// let system = generate(&GeneratorConfig::new(40, 10).with_seed(7));
/// assert_eq!(system.cpg().ordinary_processes().count(), 40);
/// assert_eq!(enumerate_tracks(system.cpg()).len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct GeneratedSystem {
    arch: Architecture,
    cpg: Cpg,
    config: GeneratorConfig,
}

impl GeneratedSystem {
    /// Assembles a system from already-generated (and possibly mutated)
    /// parts. Used by the mutation operators in [`crate::mutate`].
    pub(crate) fn from_parts(arch: Architecture, cpg: Cpg, config: GeneratorConfig) -> Self {
        GeneratedSystem { arch, cpg, config }
    }

    /// The target architecture (1–11 programmable processors, one ASIC and
    /// 1–8 buses, following the paper's experimental setup).
    #[must_use]
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The generated conditional process graph, including communication
    /// processes.
    #[must_use]
    pub fn cpg(&self) -> &Cpg {
        &self.cpg
    }

    /// The configuration this system was generated from.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// The condition broadcast time `τ0` to use when scheduling this system.
    #[must_use]
    pub fn broadcast_time(&self) -> Time {
        self.config.broadcast_time()
    }
}

/// Builds the target architecture used by the experiments: `processors`
/// programmable processors, one ASIC and `buses` shared buses.
#[must_use]
pub fn architecture(processors: usize, buses: usize) -> Architecture {
    let mut builder = Architecture::builder();
    for i in 0..processors.max(1) {
        builder = builder.processor(format!("cpu{i}"));
    }
    builder = builder.hardware("asic");
    for i in 0..buses.max(1) {
        builder = builder.bus(format!("bus{i}"));
    }
    builder
        .build()
        .expect("generated architectures are always valid")
}

/// Generates a random system according to `config`.
///
/// The generated graph has exactly `config.nodes()` ordinary processes and
/// exactly `config.target_paths()` alternative paths; processes are mapped
/// uniformly at random over the processors and the ASIC and execution times
/// follow the configured distribution.
///
/// # Panics
///
/// Panics if the target number of alternative paths cannot be realised within
/// the node budget (the conditional skeleton needs roughly `3·k` processes for
/// `k` paths when the path count is prime; every combination used by the
/// paper's experiments fits comfortably).
#[must_use]
pub fn generate(config: &GeneratorConfig) -> GeneratedSystem {
    let (arch, cpg) = generate_unexpanded(config);
    let cpg = expand_communications(&cpg, &arch, BusPolicy::RoundRobin)
        .expect("generated graphs expand cleanly");
    debug_assert_eq!(enumerate_tracks(&cpg).len(), config.target_paths());

    GeneratedSystem {
        arch,
        cpg,
        config: config.clone(),
    }
}

/// Generates the random system of [`generate`] but stops *before*
/// communication expansion, returning the architecture and the unexpanded
/// graph (ordinary processes and dummies only).
///
/// This is the substrate the mutation operators of [`crate::mutate`] replay
/// through a fresh [`CpgBuilder`]: user processes keep their creation-order
/// ids and the builder re-appends the dummy source/sink after them, so edits
/// expressed against the unexpanded graph are stable across
/// re-materializations of the same workload.
///
/// # Panics
///
/// Panics under the same node-budget condition as [`generate`].
#[must_use]
pub fn generate_unexpanded(config: &GeneratorConfig) -> (Architecture, Cpg) {
    let mut rng = StdRng::seed_from_u64(config.seed());
    let arch = architecture(config.processors(), config.buses());
    let computation: Vec<PeId> = arch.computation_elements().collect();

    let stages = factorize_into_stages(config.target_paths(), config.nodes(), &mut rng);
    let skeleton_cost: usize = stages.iter().map(|&k| stage_cost(k)).sum();
    assert!(
        skeleton_cost <= config.nodes(),
        "cannot realise {} alternative paths with only {} processes",
        config.target_paths(),
        config.nodes()
    );

    let mut gen = Generator {
        builder: CpgBuilder::new(),
        rng,
        config,
        computation,
        created: Vec::new(),
        conditions: 0,
    };

    // Conditional skeleton: a sequence of stages, each contributing a factor
    // of the total number of alternative paths.
    let mut previous_exit: Option<ProcessId> = None;
    for &paths in &stages {
        let (entry, exit) = gen.stage(paths, Cube::top());
        if let Some(prev) = previous_exit {
            gen.data_edge(prev, entry);
        }
        previous_exit = Some(exit);
    }

    // Filler processes: independent computation and communication load
    // attached below random existing processes.
    while gen.created.len() < config.nodes() {
        let parent = gen.created[gen.rng.random_range(0..gen.created.len())];
        let cube = parent.1;
        let filler = gen.new_process(cube);
        gen.data_edge(parent.0, filler.0);
    }

    let Generator { builder, .. } = gen;
    let cpg = builder
        .build(&arch)
        .expect("generated graphs are structurally valid");
    (arch, cpg)
}

/// Number of skeleton processes needed by a stage with `k` alternative paths:
/// one disjunction and one conjunction process per internal split plus one
/// leaf process per path (`3k − 2` in total).
fn stage_cost(k: usize) -> usize {
    if k <= 1 {
        1
    } else {
        3 * k - 2
    }
}

/// Splits the target path count into a sequence of stage factors whose
/// skeleton fits into the node budget. Prefers the prime factorisation (the
/// cheapest realisation) and then randomly re-merges factors while the budget
/// allows, so that different seeds produce differently shaped graphs.
fn factorize_into_stages(target: usize, budget: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut factors = prime_factors(target);
    // Randomly merge adjacent factors while the skeleton still fits.
    loop {
        if factors.len() < 2 {
            break;
        }
        let current: usize = factors.iter().map(|&k| stage_cost(k)).sum();
        let i = rng.random_range(0..factors.len() - 1);
        let merged = factors[i] * factors[i + 1];
        let new_cost =
            current - stage_cost(factors[i]) - stage_cost(factors[i + 1]) + stage_cost(merged);
        if new_cost <= budget && rng.random_bool(0.4) {
            factors[i] = merged;
            factors.remove(i + 1);
        } else {
            break;
        }
    }
    factors
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut d = 2;
    while n > 1 {
        while n % d == 0 {
            factors.push(d);
            n /= d;
        }
        d += 1;
        if d * d > n && n > 1 {
            factors.push(n);
            break;
        }
    }
    if factors.is_empty() {
        factors.push(1);
    }
    factors
}

struct Generator<'a> {
    builder: CpgBuilder,
    rng: StdRng,
    config: &'a GeneratorConfig,
    computation: Vec<PeId>,
    /// Every created process with the branch context (cube) it lives under.
    created: Vec<(ProcessId, Cube)>,
    conditions: usize,
}

impl Generator<'_> {
    /// Creates one ordinary process with a random execution time and mapping.
    fn new_process(&mut self, cube: Cube) -> (ProcessId, Cube) {
        let name = format!("N{}", self.created.len());
        let exec = self.exec_time();
        let pe = self.computation[self.rng.random_range(0..self.computation.len())];
        let id = self.builder.process(name, exec, pe);
        self.created.push((id, cube));
        (id, cube)
    }

    fn exec_time(&mut self) -> Time {
        let units = match self.config.distribution() {
            ExecTimeDistribution::Uniform { min, max } => self.rng.random_range(min..=max.max(min)),
            ExecTimeDistribution::Exponential { mean } => {
                let u: f64 = self.rng.random();
                let sample = -mean * (1.0 - u).ln();
                sample.ceil().max(1.0) as u64
            }
        };
        Time::new(units.max(1))
    }

    fn comm_time(&mut self) -> Time {
        Time::new(self.rng.random_range(1..=self.config.max_comm_time()))
    }

    /// Adds a simple data-flow edge with a random communication time.
    fn data_edge(&mut self, from: ProcessId, to: ProcessId) {
        let comm = self.comm_time();
        self.builder.simple_edge(from, to, comm);
    }

    /// Builds a stage with exactly `paths` alternative paths under the branch
    /// context `cube`, returning its entry and exit processes.
    fn stage(&mut self, paths: usize, cube: Cube) -> (ProcessId, ProcessId) {
        if paths <= 1 {
            let (id, _) = self.new_process(cube);
            return (id, id);
        }
        // Split the path count between a true branch and a false branch.
        let true_paths = self.rng.random_range(1..paths);
        let false_paths = paths - true_paths;

        let (disjunction, _) = self.new_process(cube);
        let cond = self.builder.condition(format!("c{}", self.conditions));
        self.conditions += 1;

        let true_cube = cube
            .and(cond.is_true())
            .expect("branch contexts never repeat a condition");
        let false_cube = cube
            .and(cond.is_false())
            .expect("branch contexts never repeat a condition");

        let (true_entry, true_exit) = self.stage(true_paths, true_cube);
        let (false_entry, false_exit) = self.stage(false_paths, false_cube);
        let comm_true = self.comm_time();
        let comm_false = self.comm_time();
        self.builder
            .conditional_edge(disjunction, true_entry, cond.is_true(), comm_true);
        self.builder
            .conditional_edge(disjunction, false_entry, cond.is_false(), comm_false);

        let (join, _) = self.new_process(cube);
        self.builder.mark_conjunction(join);
        self.data_edge(true_exit, join);
        self.data_edge(false_exit, join);
        (disjunction, join)
    }
}

/// Convenience: generates the full experiment suite of the paper (wrapper
/// around [`crate::paper_suite`] and [`generate`]).
#[must_use]
pub fn generate_paper_suite(graphs_per_size: usize) -> Vec<GeneratedSystem> {
    crate::paper_suite(graphs_per_size)
        .iter()
        .map(generate)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::ProcessKind;

    #[test]
    fn prime_factorisation_is_correct() {
        assert_eq!(prime_factors(10), vec![2, 5]);
        assert_eq!(prime_factors(12), vec![2, 2, 3]);
        assert_eq!(prime_factors(18), vec![2, 3, 3]);
        assert_eq!(prime_factors(24), vec![2, 2, 2, 3]);
        assert_eq!(prime_factors(32), vec![2, 2, 2, 2, 2]);
        assert_eq!(prime_factors(7), vec![7]);
        assert_eq!(prime_factors(1), vec![1]);
    }

    #[test]
    fn stage_cost_matches_the_split_tree_size() {
        assert_eq!(stage_cost(1), 1);
        assert_eq!(stage_cost(2), 4);
        assert_eq!(stage_cost(5), 13);
        assert_eq!(stage_cost(32), 94);
    }

    #[test]
    fn generated_graph_has_exact_node_and_path_counts() {
        for (nodes, paths) in [(40, 10), (60, 12), (60, 32), (80, 18), (120, 24)] {
            let config = GeneratorConfig::new(nodes, paths).with_seed(42);
            let system = generate(&config);
            assert_eq!(
                system.cpg().ordinary_processes().count(),
                nodes,
                "{nodes}/{paths}"
            );
            assert_eq!(
                enumerate_tracks(system.cpg()).len(),
                paths,
                "{nodes}/{paths}"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = generate(&GeneratorConfig::new(60, 12).with_seed(1));
        let b = generate(&GeneratorConfig::new(60, 12).with_seed(2));
        let times_a: Vec<_> = a
            .cpg()
            .ordinary_processes()
            .map(|p| a.cpg().exec_time(p))
            .collect();
        let times_b: Vec<_> = b
            .cpg()
            .ordinary_processes()
            .map(|p| b.cpg().exec_time(p))
            .collect();
        assert_ne!(times_a, times_b);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = generate(&GeneratorConfig::new(60, 12).with_seed(9));
        let b = generate(&GeneratorConfig::new(60, 12).with_seed(9));
        assert_eq!(a.cpg().len(), b.cpg().len());
        for (pa, pb) in a.cpg().process_ids().zip(b.cpg().process_ids()) {
            assert_eq!(a.cpg().exec_time(pa), b.cpg().exec_time(pb));
            assert_eq!(a.cpg().mapping(pa), b.cpg().mapping(pb));
        }
    }

    #[test]
    fn architecture_matches_the_requested_size() {
        let arch = architecture(7, 3);
        assert_eq!(arch.processors().count(), 7);
        assert_eq!(arch.hardware().count(), 1);
        assert_eq!(arch.buses().count(), 3);
    }

    #[test]
    fn exponential_times_are_positive() {
        let config = GeneratorConfig::new(50, 10)
            .with_distribution(ExecTimeDistribution::Exponential { mean: 8.0 })
            .with_seed(3);
        let system = generate(&config);
        for p in system.cpg().ordinary_processes() {
            assert!(system.cpg().exec_time(p) >= Time::new(1));
        }
    }

    #[test]
    fn expansion_inserts_communication_processes() {
        let system = generate(&GeneratorConfig::new(60, 10).with_processors(4).with_seed(5));
        assert!(system.cpg().communication_processes().count() > 0);
        for comm in system.cpg().communication_processes() {
            let pe = system.cpg().mapping(comm).unwrap();
            assert!(system.arch().kind_of(pe).is_bus());
            assert_eq!(
                system.cpg().process(comm).kind(),
                ProcessKind::Communication
            );
        }
    }

    #[test]
    fn paper_suite_systems_generate_and_have_requested_paths() {
        // One graph per size keeps the test fast; the benchmark harness runs
        // the full 360-per-size suite.
        for system in generate_paper_suite(2) {
            let paths = enumerate_tracks(system.cpg()).len();
            assert_eq!(paths, system.config().target_paths());
        }
    }

    #[test]
    #[should_panic(expected = "cannot realise")]
    fn impossible_budget_is_rejected() {
        let config = GeneratorConfig::new(5, 32).with_seed(1);
        let _ = generate(&config);
    }
}
