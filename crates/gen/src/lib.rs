//! Random generation of conditional process graphs and target architectures
//! for experimental evaluation.
//!
//! The evaluation of the paper (Section 6) uses 1080 conditional process
//! graphs generated for experimental purpose: 360 graphs for each dimension of
//! 60, 80 and 120 nodes, with 10, 12, 18, 24 or 32 alternative paths,
//! execution times drawn from uniform and exponential distributions, and
//! architectures consisting of one ASIC, one to eleven processors and one to
//! eight buses. This crate reproduces that workload:
//!
//! * [`GeneratorConfig`] describes one system (node count, target number of
//!   alternative paths, architecture size, execution-time distribution, seed);
//! * [`generate`] materialises it as a [`GeneratedSystem`] — an architecture
//!   plus an expanded conditional process graph with exactly the requested
//!   number of alternative paths;
//! * [`paper_suite`] / [`generate_paper_suite`] enumerate the whole
//!   experiment suite, parameterised by the number of graphs per size so that
//!   quick runs and the full 1080-graph reproduction use the same code.
//!
//! # Example
//!
//! ```
//! use cpg::enumerate_tracks;
//! use cpg_gen::{generate, GeneratorConfig};
//!
//! let system = generate(&GeneratorConfig::new(60, 18).with_seed(2024));
//! assert_eq!(system.cpg().ordinary_processes().count(), 60);
//! assert_eq!(enumerate_tracks(system.cpg()).len(), 18);
//! ```

#![forbid(unsafe_code)]

mod config;
mod generator;
mod mutate;

pub use config::{paper_suite, ExecTimeDistribution, GeneratorConfig};
pub use generator::{
    architecture, generate, generate_paper_suite, generate_unexpanded, GeneratedSystem,
};
pub use mutate::{system_fingerprint, EditOp, MaterializeError, Workload, WorkloadOp};
