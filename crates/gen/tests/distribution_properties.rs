//! Statistical sanity checks of the workload generator: the execution-time
//! distributions and the structural parameters behave as the experiment of
//! Section 6 assumes.

use cpg::enumerate_tracks;
use cpg_arch::Time;
use cpg_gen::{generate, paper_suite, ExecTimeDistribution, GeneratorConfig};

fn execution_times(config: &GeneratorConfig) -> Vec<u64> {
    let system = generate(config);
    system
        .cpg()
        .ordinary_processes()
        .map(|p| system.cpg().exec_time(p).as_u64())
        .collect()
}

#[test]
fn uniform_execution_times_respect_their_bounds() {
    let config = GeneratorConfig::new(120, 12)
        .with_distribution(ExecTimeDistribution::Uniform { min: 5, max: 25 })
        .with_seed(91);
    let times = execution_times(&config);
    assert_eq!(times.len(), 120);
    assert!(times.iter().all(|&t| (5..=25).contains(&t)));
    // A uniform sample of 120 values over [5, 25] has a mean near 15.
    let mean = times.iter().sum::<u64>() as f64 / times.len() as f64;
    assert!((10.0..20.0).contains(&mean), "mean {mean} implausible");
}

#[test]
fn exponential_execution_times_have_the_requested_scale() {
    let config = GeneratorConfig::new(200, 10)
        .with_distribution(ExecTimeDistribution::Exponential { mean: 12.0 })
        .with_seed(92);
    let times = execution_times(&config);
    assert!(times.iter().all(|&t| t >= 1));
    let mean = times.iter().sum::<u64>() as f64 / times.len() as f64;
    // Exponential with mean 12, rounded up: the sample mean of 200 values
    // lands comfortably within a factor of two of the target.
    assert!((6.0..24.0).contains(&mean), "mean {mean} implausible");
    // An exponential sample is right-skewed: the maximum exceeds twice the
    // mean with overwhelming probability.
    assert!(*times.iter().max().unwrap() as f64 > 2.0 * mean);
}

#[test]
fn communication_times_stay_within_the_configured_maximum() {
    let config = GeneratorConfig::new(80, 18)
        .with_processors(5)
        .with_max_comm_time(3)
        .with_seed(93);
    let system = generate(&config);
    for comm in system.cpg().communication_processes() {
        let time = system.cpg().exec_time(comm);
        assert!(time >= Time::new(1) && time <= Time::new(3), "{time}");
    }
}

#[test]
fn path_counts_of_the_full_suite_match_the_papers_parameters() {
    // One graph per (size, path-count, distribution) bucket is enough to pin
    // the structural parameters; the benchmark harness exercises the rest.
    let suite = paper_suite(10);
    assert_eq!(suite.len(), 30);
    for config in &suite {
        assert!([60, 80, 120].contains(&config.nodes()));
        assert!([10, 12, 18, 24, 32].contains(&config.target_paths()));
        assert!(config.processors() >= 1 && config.processors() <= 11);
        assert!(config.buses() >= 1 && config.buses() <= 8);
    }
    for config in suite.iter().take(6) {
        let system = generate(config);
        assert_eq!(enumerate_tracks(system.cpg()).len(), config.target_paths());
        assert_eq!(system.cpg().ordinary_processes().count(), config.nodes());
    }
}

#[test]
fn mapping_spreads_processes_over_the_available_processors() {
    let config = GeneratorConfig::new(100, 10)
        .with_processors(6)
        .with_seed(94);
    let system = generate(&config);
    let used: std::collections::HashSet<_> = system
        .cpg()
        .ordinary_processes()
        .map(|p| system.cpg().mapping(p).unwrap())
        .collect();
    // With 100 processes drawn uniformly over 7 computation elements, every
    // element receives at least one process with overwhelming probability.
    assert_eq!(used.len(), system.arch().computation_elements().count());
}
