//! Property: workload generation and mutation are fully seed-deterministic.
//!
//! The adversarial corpus stores workloads (configuration + mutation ops),
//! never materialized graphs, so replaying an offender years later must
//! reproduce the exact same merge input. The double-run checks below pin
//! that contract: materializing the same workload twice — including every
//! mutation operator over arbitrary `u64` payloads — yields bit-identical
//! systems (equal fingerprints) or the identical benign rejection.

use proptest::prelude::*;

use cpg_gen::{generate, system_fingerprint, GeneratorConfig, Workload, WorkloadOp};

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (24usize..48, 1usize..8, 1usize..5, 1usize..3, any::<u64>()).prop_map(
        |(nodes, paths, processors, buses, seed)| {
            GeneratorConfig::new(nodes, paths)
                .with_processors(processors)
                .with_buses(buses)
                .with_seed(seed)
        },
    )
}

fn op_strategy() -> impl Strategy<Value = WorkloadOp> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(kind, a, b, c)| {
        match kind % 8 {
            0 => WorkloadOp::ExecTime {
                slot: a,
                units: b % 1000,
            },
            1 => WorkloadOp::Remap {
                slot: a,
                pe_slot: b,
            },
            2 => WorkloadOp::SqueezeProcessors { processors: a % 6 },
            3 => WorkloadOp::SqueezeBuses { buses: a % 4 },
            4 => WorkloadOp::DropProcessingElements { keep: a },
            5 => WorkloadOp::AddDependency {
                from_slot: a,
                to_slot: b,
                comm: c,
            },
            6 => WorkloadOp::RemoveDependency { slot: a },
            _ => WorkloadOp::RenestGuard {
                slot: a,
                cond_slot: b,
                value: c % 2 == 0,
            },
        }
    })
}

proptest! {
    // Pinned case count and shrink budget: CI runs must be deterministic and
    // fast regardless of PROPTEST_CASES / PROPTEST_MAX_SHRINK_ITERS in the
    // environment.
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn generation_is_seed_deterministic(config in config_strategy()) {
        let a = generate(&config);
        let b = generate(&config);
        prop_assert_eq!(system_fingerprint(&a), system_fingerprint(&b));
    }

    #[test]
    fn mutated_workloads_rematerialize_identically(
        config in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..12),
    ) {
        let mut workload = Workload::new(config);
        workload.ops = ops;
        let first = workload.materialize();
        let second = workload.materialize();
        match (first, second) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(system_fingerprint(&a), system_fingerprint(&b));
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false,
                "double materialization diverged: {:?} vs {:?}",
                a.map(|s| system_fingerprint(&s)),
                b.map(|s| system_fingerprint(&s)),
            ),
        }
    }

    #[test]
    fn op_token_encoding_round_trips(ops in proptest::collection::vec(op_strategy(), 0..12)) {
        let mut workload = Workload::new(GeneratorConfig::new(24, 2).with_seed(1));
        workload.ops = ops;
        prop_assert_eq!(Workload::parse_ops(&workload.encode_ops()), Some(workload.ops));
    }
}
