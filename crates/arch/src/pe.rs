//! Processing elements: programmable processors, hardware processors and buses.

use std::fmt;

/// Identifier of a processing element inside an [`Architecture`].
///
/// Processing elements cover all the resources of the paper's target
/// architecture: programmable processors, hardware processors (ASICs) *and*
/// shared buses — the latter because communication processes are mapped to
/// buses exactly like computation processes are mapped to processors.
///
/// [`Architecture`]: crate::Architecture
///
/// # Example
///
/// ```
/// use cpg_arch::Architecture;
///
/// let arch = Architecture::builder().processor("pe1").bus("bus0").build()?;
/// let pe1 = arch.pe_by_name("pe1").unwrap();
/// assert_eq!(arch.pe(pe1).name(), "pe1");
/// # Ok::<(), cpg_arch::BuildArchitectureError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeId(pub(crate) usize);

impl PeId {
    /// Returns the position of this processing element inside its architecture.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Creates an identifier from a raw index.
    ///
    /// Prefer obtaining identifiers from [`Architecture`](crate::Architecture)
    /// queries; this constructor exists for deserialization-style use cases and
    /// tests.
    #[must_use]
    pub const fn from_index(index: usize) -> Self {
        PeId(index)
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe#{}", self.0)
    }
}

/// The kind of a processing element, which determines its concurrency rules.
///
/// * [`PeKind::Programmable`] — a CPU core: executes one process at a time.
/// * [`PeKind::Hardware`] — an ASIC: executes any number of processes in
///   parallel.
/// * [`PeKind::Bus`] — a shared bus: carries one data transfer at a time and
///   hosts communication processes and condition broadcasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// A programmable processor (sequential execution).
    Programmable,
    /// An application-specific hardware processor (parallel execution).
    Hardware,
    /// A shared communication bus (sequential transfers).
    Bus,
}

impl PeKind {
    /// `true` when only a single process/transfer may be active at a time.
    ///
    /// # Example
    ///
    /// ```
    /// use cpg_arch::PeKind;
    /// assert!(PeKind::Programmable.is_exclusive());
    /// assert!(PeKind::Bus.is_exclusive());
    /// assert!(!PeKind::Hardware.is_exclusive());
    /// ```
    #[must_use]
    pub const fn is_exclusive(self) -> bool {
        matches!(self, PeKind::Programmable | PeKind::Bus)
    }

    /// `true` for communication resources (buses).
    #[must_use]
    pub const fn is_bus(self) -> bool {
        matches!(self, PeKind::Bus)
    }

    /// `true` for computation resources (processors and hardware).
    #[must_use]
    pub const fn is_computation(self) -> bool {
        !self.is_bus()
    }
}

impl fmt::Display for PeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            PeKind::Programmable => "programmable processor",
            PeKind::Hardware => "hardware processor",
            PeKind::Bus => "bus",
        };
        f.write_str(label)
    }
}

/// A single processing element of the target architecture.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcessingElement {
    pub(crate) name: String,
    pub(crate) kind: PeKind,
    /// For buses only: whether every programmable/hardware processor is
    /// connected to this bus. Condition values are broadcast on such buses.
    pub(crate) connects_all: bool,
}

impl ProcessingElement {
    /// The human-readable name given at construction time.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kind (processor / hardware / bus) of this element.
    #[must_use]
    pub const fn kind(&self) -> PeKind {
        self.kind
    }

    /// For buses: whether all processors are connected to it (and hence
    /// whether it may carry condition broadcasts). Always `true` for
    /// computation resources.
    #[must_use]
    pub const fn connects_all_processors(&self) -> bool {
        self.connects_all
    }
}

impl fmt::Display for ProcessingElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusivity_rules_match_the_paper() {
        assert!(PeKind::Programmable.is_exclusive());
        assert!(PeKind::Bus.is_exclusive());
        assert!(!PeKind::Hardware.is_exclusive());
    }

    #[test]
    fn bus_and_computation_classification() {
        assert!(PeKind::Bus.is_bus());
        assert!(!PeKind::Bus.is_computation());
        assert!(PeKind::Programmable.is_computation());
        assert!(PeKind::Hardware.is_computation());
    }

    #[test]
    fn pe_id_display_and_index() {
        let id = PeId::from_index(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "pe#3");
    }

    #[test]
    fn kind_display_is_readable() {
        assert_eq!(PeKind::Hardware.to_string(), "hardware processor");
        assert_eq!(PeKind::Bus.to_string(), "bus");
    }
}
