//! The target architecture: a named collection of processing elements.

use std::fmt;

use crate::error::BuildArchitectureError;
use crate::pe::{PeId, PeKind, ProcessingElement};

/// A heterogeneous target architecture: programmable processors, hardware
/// processors (ASICs) and shared buses.
///
/// Construct one with [`Architecture::builder`]. The collection is immutable
/// after construction, which lets every other crate hand out [`PeId`]s that
/// are guaranteed to stay valid.
///
/// # Example
///
/// ```
/// use cpg_arch::{Architecture, PeKind};
///
/// let arch = Architecture::builder()
///     .processor("pe1")
///     .processor("pe2")
///     .hardware("pe3")
///     .bus("pe4")
///     .build()?;
///
/// assert_eq!(arch.len(), 4);
/// assert_eq!(arch.processors().count(), 2);
/// assert_eq!(arch.computation_elements().count(), 3);
/// let bus = arch.buses().next().unwrap();
/// assert_eq!(arch.kind_of(bus), PeKind::Bus);
/// assert!(arch.broadcast_buses().next().is_some());
/// # Ok::<(), cpg_arch::BuildArchitectureError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    pes: Vec<ProcessingElement>,
}

impl Architecture {
    /// Starts building a new architecture.
    #[must_use]
    pub fn builder() -> ArchitectureBuilder {
        ArchitectureBuilder::new()
    }

    /// Number of processing elements (processors + hardware + buses).
    #[must_use]
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// `true` when the architecture has no processing element.
    ///
    /// A successfully built architecture is never empty; this exists for
    /// API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pes.is_empty()
    }

    /// The processing element behind an identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this architecture.
    #[must_use]
    pub fn pe(&self, id: PeId) -> &ProcessingElement {
        &self.pes[id.0]
    }

    /// The kind of the processing element behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this architecture.
    #[must_use]
    pub fn kind_of(&self, id: PeId) -> PeKind {
        self.pes[id.0].kind
    }

    /// Looks up a processing element by its name.
    #[must_use]
    pub fn pe_by_name(&self, name: &str) -> Option<PeId> {
        self.pes.iter().position(|pe| pe.name == name).map(PeId)
    }

    /// Iterates over all processing element identifiers.
    pub fn ids(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.pes.len()).map(PeId)
    }

    /// Iterates over the programmable processors.
    pub fn processors(&self) -> impl Iterator<Item = PeId> + '_ {
        self.of_kind(PeKind::Programmable)
    }

    /// Iterates over the hardware processors (ASICs).
    pub fn hardware(&self) -> impl Iterator<Item = PeId> + '_ {
        self.of_kind(PeKind::Hardware)
    }

    /// Iterates over the buses.
    pub fn buses(&self) -> impl Iterator<Item = PeId> + '_ {
        self.of_kind(PeKind::Bus)
    }

    /// Iterates over every computation resource (processors and hardware).
    pub fn computation_elements(&self) -> impl Iterator<Item = PeId> + '_ {
        self.ids().filter(|id| self.kind_of(*id).is_computation())
    }

    /// Iterates over the buses on which condition values may be broadcast,
    /// i.e. buses connected to all processors.
    pub fn broadcast_buses(&self) -> impl Iterator<Item = PeId> + '_ {
        self.ids()
            .filter(|id| self.kind_of(*id).is_bus() && self.pe(*id).connects_all)
    }

    /// `true` when only one process/transfer at a time may execute on `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this architecture.
    #[must_use]
    pub fn is_exclusive(&self, id: PeId) -> bool {
        self.kind_of(id).is_exclusive()
    }

    fn of_kind(&self, kind: PeKind) -> impl Iterator<Item = PeId> + '_ {
        self.pes
            .iter()
            .enumerate()
            .filter(move |(_, pe)| pe.kind == kind)
            .map(|(i, _)| PeId(i))
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "architecture with {} processors, {} hardware, {} buses",
            self.processors().count(),
            self.hardware().count(),
            self.buses().count()
        )
    }
}

/// Incremental builder for [`Architecture`].
///
/// # Example
///
/// ```
/// use cpg_arch::Architecture;
///
/// let arch = Architecture::builder()
///     .processor("cpu0")
///     .bus("shared-bus")
///     .build()?;
/// assert_eq!(arch.len(), 2);
/// # Ok::<(), cpg_arch::BuildArchitectureError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ArchitectureBuilder {
    pes: Vec<ProcessingElement>,
}

impl ArchitectureBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a programmable processor.
    #[must_use]
    pub fn processor(mut self, name: impl Into<String>) -> Self {
        self.pes.push(ProcessingElement {
            name: name.into(),
            kind: PeKind::Programmable,
            connects_all: true,
        });
        self
    }

    /// Adds a hardware processor (ASIC) able to run processes in parallel.
    #[must_use]
    pub fn hardware(mut self, name: impl Into<String>) -> Self {
        self.pes.push(ProcessingElement {
            name: name.into(),
            kind: PeKind::Hardware,
            connects_all: true,
        });
        self
    }

    /// Adds a shared bus connected to all processors (the common case assumed
    /// by the paper for condition broadcasting).
    #[must_use]
    pub fn bus(mut self, name: impl Into<String>) -> Self {
        self.pes.push(ProcessingElement {
            name: name.into(),
            kind: PeKind::Bus,
            connects_all: true,
        });
        self
    }

    /// Adds a bus that is *not* connected to every processor; it can carry
    /// point-to-point communications but no condition broadcasts.
    #[must_use]
    pub fn local_bus(mut self, name: impl Into<String>) -> Self {
        self.pes.push(ProcessingElement {
            name: name.into(),
            kind: PeKind::Bus,
            connects_all: false,
        });
        self
    }

    /// Number of elements added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// `true` when nothing has been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pes.is_empty()
    }

    /// Finishes construction, validating the architecture.
    ///
    /// # Errors
    ///
    /// * [`BuildArchitectureError::NoComputationResource`] when no processor or
    ///   hardware element was added.
    /// * [`BuildArchitectureError::DuplicateName`] when two elements share a name.
    /// * [`BuildArchitectureError::NoBus`] when there are at least two
    ///   computation resources but no bus.
    /// * [`BuildArchitectureError::NoBroadcastBus`] when buses exist but none is
    ///   connected to all processors.
    pub fn build(self) -> Result<Architecture, BuildArchitectureError> {
        let computation = self
            .pes
            .iter()
            .filter(|pe| pe.kind.is_computation())
            .count();
        if computation == 0 {
            return Err(BuildArchitectureError::NoComputationResource);
        }
        for (i, pe) in self.pes.iter().enumerate() {
            if self.pes[..i].iter().any(|other| other.name == pe.name) {
                return Err(BuildArchitectureError::DuplicateName(pe.name.clone()));
            }
        }
        let buses = self.pes.iter().filter(|pe| pe.kind.is_bus()).count();
        if computation > 1 && buses == 0 {
            return Err(BuildArchitectureError::NoBus);
        }
        if buses > 0
            && !self
                .pes
                .iter()
                .any(|pe| pe.kind.is_bus() && pe.connects_all)
        {
            return Err(BuildArchitectureError::NoBroadcastBus);
        }
        Ok(Architecture { pes: self.pes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Architecture {
        Architecture::builder()
            .processor("pe1")
            .processor("pe2")
            .hardware("pe3")
            .bus("pe4")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_ids_in_insertion_order() {
        let arch = sample();
        assert_eq!(arch.pe_by_name("pe1"), Some(PeId(0)));
        assert_eq!(arch.pe_by_name("pe4"), Some(PeId(3)));
        assert_eq!(arch.pe_by_name("missing"), None);
    }

    #[test]
    fn kind_queries_partition_the_elements() {
        let arch = sample();
        assert_eq!(arch.len(), 4);
        assert!(!arch.is_empty());
        assert_eq!(arch.processors().count(), 2);
        assert_eq!(arch.hardware().count(), 1);
        assert_eq!(arch.buses().count(), 1);
        assert_eq!(arch.computation_elements().count(), 3);
        assert_eq!(
            arch.processors().count() + arch.hardware().count() + arch.buses().count(),
            arch.len()
        );
    }

    #[test]
    fn exclusivity_follows_kind() {
        let arch = sample();
        let pe1 = arch.pe_by_name("pe1").unwrap();
        let pe3 = arch.pe_by_name("pe3").unwrap();
        let pe4 = arch.pe_by_name("pe4").unwrap();
        assert!(arch.is_exclusive(pe1));
        assert!(!arch.is_exclusive(pe3));
        assert!(arch.is_exclusive(pe4));
    }

    #[test]
    fn broadcast_buses_exclude_local_buses() {
        let arch = Architecture::builder()
            .processor("a")
            .processor("b")
            .bus("global")
            .local_bus("local")
            .build()
            .unwrap();
        let broadcast: Vec<_> = arch.broadcast_buses().collect();
        assert_eq!(broadcast.len(), 1);
        assert_eq!(arch.pe(broadcast[0]).name(), "global");
        assert_eq!(arch.buses().count(), 2);
    }

    #[test]
    fn empty_architecture_is_rejected() {
        assert_eq!(
            Architecture::builder().build(),
            Err(BuildArchitectureError::NoComputationResource)
        );
        assert_eq!(
            Architecture::builder().bus("b").build(),
            Err(BuildArchitectureError::NoComputationResource)
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        assert_eq!(
            Architecture::builder()
                .processor("x")
                .hardware("x")
                .bus("b")
                .build(),
            Err(BuildArchitectureError::DuplicateName("x".into()))
        );
    }

    #[test]
    fn multiprocessor_without_bus_is_rejected() {
        assert_eq!(
            Architecture::builder()
                .processor("a")
                .processor("b")
                .build(),
            Err(BuildArchitectureError::NoBus)
        );
    }

    #[test]
    fn only_local_buses_is_rejected() {
        assert_eq!(
            Architecture::builder()
                .processor("a")
                .processor("b")
                .local_bus("l")
                .build(),
            Err(BuildArchitectureError::NoBroadcastBus)
        );
    }

    #[test]
    fn single_processor_without_bus_is_fine() {
        let arch = Architecture::builder().processor("solo").build().unwrap();
        assert_eq!(arch.len(), 1);
        assert_eq!(arch.buses().count(), 0);
    }

    #[test]
    fn display_summarizes_composition() {
        assert_eq!(
            sample().to_string(),
            "architecture with 2 processors, 1 hardware, 1 buses"
        );
    }
}
