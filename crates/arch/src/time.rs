//! Discrete time values used by the schedulers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A discrete, non-negative instant or duration in abstract time units.
///
/// The paper works exclusively with integer execution and communication times
/// (nanoseconds in the ATM example, abstract units elsewhere), so `Time` wraps
/// a `u64`. All arithmetic is saturating: schedules of malformed inputs can
/// never overflow silently, they simply peg at `Time::MAX`.
///
/// # Example
///
/// ```
/// use cpg_arch::Time;
///
/// let start = Time::new(4);
/// let exec = Time::new(12);
/// assert_eq!(start + exec, Time::new(16));
/// assert_eq!((start + exec).as_u64(), 16);
/// assert!(Time::ZERO < start);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero instant (system activation reference).
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as "never" / saturation value.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time value from raw units.
    #[must_use]
    pub const fn new(units: u64) -> Self {
        Time(units)
    }

    /// Returns the raw number of time units.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating addition; never overflows.
    #[must_use]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction; clamps at [`Time::ZERO`].
    #[must_use]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two times.
    #[must_use]
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }

    /// Returns the smaller of two times.
    #[must_use]
    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }

    /// `true` when this is the zero instant.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl From<u64> for Time {
    fn from(units: u64) -> Self {
        Time(units)
    }
}

impl From<Time> for u64 {
    fn from(value: Time) -> Self {
        value.0
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;

    fn sub(self, rhs: Time) -> Time {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&self.0.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_as_u64_round_trip() {
        assert_eq!(Time::new(42).as_u64(), 42);
        assert_eq!(u64::from(Time::from(7u64)), 7);
    }

    #[test]
    fn zero_is_default_and_is_zero() {
        assert_eq!(Time::default(), Time::ZERO);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::new(1).is_zero());
    }

    #[test]
    fn addition_is_saturating() {
        assert_eq!(Time::new(3) + Time::new(4), Time::new(7));
        assert_eq!(Time::MAX + Time::new(1), Time::MAX);
        let mut t = Time::new(10);
        t += Time::new(5);
        assert_eq!(t, Time::new(15));
    }

    #[test]
    fn subtraction_clamps_at_zero() {
        assert_eq!(Time::new(10) - Time::new(4), Time::new(6));
        assert_eq!(Time::new(4) - Time::new(10), Time::ZERO);
        let mut t = Time::new(10);
        t -= Time::new(3);
        assert_eq!(t, Time::new(7));
    }

    #[test]
    fn ordering_and_min_max() {
        assert!(Time::new(3) < Time::new(5));
        assert_eq!(Time::new(3).max(Time::new(5)), Time::new(5));
        assert_eq!(Time::new(3).min(Time::new(5)), Time::new(3));
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [1u64, 2, 3, 4].into_iter().map(Time::new).sum();
        assert_eq!(total, Time::new(10));
    }

    #[test]
    fn display_shows_raw_units() {
        assert_eq!(Time::new(39).to_string(), "39");
    }
}
