//! Target architecture model for conditional-process-graph scheduling.
//!
//! The DATE 1998 paper by Eles et al. considers a *generic architecture*
//! consisting of programmable processors, application-specific hardware
//! processors (ASICs) and several shared buses:
//!
//! * only one process at a time runs on a programmable processor,
//! * a hardware processor can execute processes in parallel,
//! * only one data transfer at a time can use a given bus,
//! * computation and data transfers on different resources overlap.
//!
//! This crate provides the vocabulary types shared by every other crate of the
//! workspace: [`Time`], [`PeId`], [`PeKind`], [`ProcessingElement`] and
//! [`Architecture`] (with [`ArchitectureBuilder`]).
//!
//! # Example
//!
//! ```
//! use cpg_arch::{Architecture, PeKind, Time};
//!
//! let arch = Architecture::builder()
//!     .processor("pe1")
//!     .processor("pe2")
//!     .hardware("asic")
//!     .bus("bus0")
//!     .build()
//!     .expect("valid architecture");
//!
//! assert_eq!(arch.processors().count(), 2);
//! assert_eq!(arch.kind_of(arch.buses().next().unwrap()), PeKind::Bus);
//! assert_eq!(Time::new(3) + Time::new(4), Time::new(7));
//! ```

#![forbid(unsafe_code)]

mod architecture;
mod error;
mod pe;
mod time;

pub use architecture::{Architecture, ArchitectureBuilder};
pub use error::BuildArchitectureError;
pub use pe::{PeId, PeKind, ProcessingElement};
pub use time::Time;
