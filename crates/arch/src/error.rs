//! Error types for architecture construction.

use std::error::Error;
use std::fmt;

/// Error returned by [`ArchitectureBuilder::build`](crate::ArchitectureBuilder::build).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildArchitectureError {
    /// The architecture contains no computation resource at all.
    NoComputationResource,
    /// Two processing elements share the same name.
    DuplicateName(String),
    /// Inter-processor communication is impossible: more than one computation
    /// resource but no bus.
    NoBus,
    /// Condition broadcasting is impossible: no bus is connected to all
    /// processors (the paper assumes at least one such bus exists).
    NoBroadcastBus,
}

impl fmt::Display for BuildArchitectureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildArchitectureError::NoComputationResource => {
                write!(f, "architecture has no processor or hardware resource")
            }
            BuildArchitectureError::DuplicateName(name) => {
                write!(f, "duplicate processing element name `{name}`")
            }
            BuildArchitectureError::NoBus => {
                write!(f, "multiple processors but no bus to connect them")
            }
            BuildArchitectureError::NoBroadcastBus => {
                write!(
                    f,
                    "no bus is connected to all processors, condition broadcast impossible"
                )
            }
        }
    }
}

impl Error for BuildArchitectureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            BuildArchitectureError::NoComputationResource.to_string(),
            BuildArchitectureError::DuplicateName("pe1".into()).to_string(),
            BuildArchitectureError::NoBus.to_string(),
            BuildArchitectureError::NoBroadcastBus.to_string(),
        ];
        for msg in msgs {
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<BuildArchitectureError>();
    }
}
