//! Simulation results and run-time violations.

use std::fmt;

use cpg::CondId;
use cpg_arch::{PeId, Time};
use cpg_path_sched::Job;

/// A violation observed while executing a schedule table.
///
/// A correct schedule table (requirements 1–4 of the paper) never produces
/// any of these; the simulator reports them so that tests and the benchmark
/// harness can detect broken tables.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimViolation {
    /// A process that executes in this scenario has no applicable activation
    /// time in the table.
    NoActivationTime {
        /// The affected job.
        job: Job,
    },
    /// Requirement 4: the column selecting the activation time references a
    /// condition whose value is not yet known on the processing element that
    /// executes the process.
    ConditionNotKnownLocally {
        /// The affected job.
        job: Job,
        /// The condition that is not yet known.
        condition: CondId,
        /// The activation time prescribed by the table.
        activation: Time,
        /// The moment the condition value becomes known locally (`None` when
        /// it never does, e.g. because the broadcast is missing).
        known_at: Option<Time>,
    },
    /// An input of the process arrives only after its tabled activation time.
    InputNotArrived {
        /// The affected job.
        job: Job,
        /// The predecessor whose output arrives late.
        predecessor: Job,
        /// The activation time prescribed by the table.
        activation: Time,
        /// The completion time of the predecessor.
        arrives: Time,
    },
    /// Two jobs overlap on an exclusive resource (programmable processor or
    /// bus).
    ResourceOverlap {
        /// The resource on which the overlap occurs.
        pe: PeId,
        /// First overlapping job.
        first: Job,
        /// Second overlapping job.
        second: Job,
    },
}

impl fmt::Display for SimViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimViolation::NoActivationTime { job } => {
                write!(f, "{job} executes in this scenario but has no activation time")
            }
            SimViolation::ConditionNotKnownLocally {
                job,
                condition,
                activation,
                known_at,
            } => match known_at {
                Some(known) => write!(
                    f,
                    "{job} activates at {activation} but {condition} is only known locally at {known}"
                ),
                None => write!(
                    f,
                    "{job} activates at {activation} but {condition} never becomes known locally"
                ),
            },
            SimViolation::InputNotArrived {
                job,
                predecessor,
                activation,
                arrives,
            } => write!(
                f,
                "{job} activates at {activation} but its input from {predecessor} arrives at {arrives}"
            ),
            SimViolation::ResourceOverlap { pe, first, second } => {
                write!(f, "{first} and {second} overlap on {pe}")
            }
        }
    }
}

impl std::error::Error for SimViolation {}

/// The outcome of executing a schedule table for one combination of condition
/// values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationReport {
    pub(crate) label: cpg::Cube,
    pub(crate) activations: Vec<(Job, Time, Time)>,
    pub(crate) delay: Time,
    pub(crate) violations: Vec<SimViolation>,
}

impl SimulationReport {
    /// The condition values of the simulated execution, as a cube.
    #[must_use]
    pub fn label(&self) -> cpg::Cube {
        self.label
    }

    /// The executed jobs with their activation and completion times, in
    /// ascending activation order.
    #[must_use]
    pub fn activations(&self) -> &[(Job, Time, Time)] {
        &self.activations
    }

    /// The system delay of this execution: the latest completion time of any
    /// executed job (the activation time of the dummy sink).
    #[must_use]
    pub fn delay(&self) -> Time {
        self.delay
    }

    /// The violations observed, empty for a correct table.
    #[must_use]
    pub fn violations(&self) -> &[SimViolation] {
        &self.violations
    }

    /// `true` when the execution completed without violations.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The activation time of a given job during this execution.
    #[must_use]
    pub fn activation_of(&self, job: Job) -> Option<Time> {
        self.activations
            .iter()
            .find(|(j, _, _)| *j == job)
            .map(|&(_, start, _)| start)
    }
}

impl fmt::Display for SimulationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "execution of {}: delay {}, {} jobs, {} violations",
            self.label,
            self.delay,
            self.activations.len(),
            self.violations.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{Cube, ProcessId};

    #[test]
    fn report_accessors_work() {
        let job = Job::Process(ProcessId::from_index(3));
        let report = SimulationReport {
            label: Cube::top(),
            activations: vec![(job, Time::new(2), Time::new(5))],
            delay: Time::new(5),
            violations: Vec::new(),
        };
        assert!(report.is_ok());
        assert_eq!(report.activation_of(job), Some(Time::new(2)));
        assert_eq!(
            report.activation_of(Job::Process(ProcessId::from_index(9))),
            None
        );
        assert_eq!(report.delay(), Time::new(5));
        assert!(report.to_string().contains("delay 5"));
    }

    #[test]
    fn violations_format_readably() {
        let job = Job::Process(ProcessId::from_index(1));
        let v = SimViolation::NoActivationTime { job };
        assert!(v.to_string().contains("P1"));
        let v = SimViolation::ConditionNotKnownLocally {
            job,
            condition: CondId::new(0),
            activation: Time::new(4),
            known_at: None,
        };
        assert!(v.to_string().contains("never"));
        let v = SimViolation::InputNotArrived {
            job,
            predecessor: Job::Process(ProcessId::from_index(0)),
            activation: Time::new(4),
            arrives: Time::new(6),
        };
        assert!(v.to_string().contains("arrives at 6"));
    }
}
