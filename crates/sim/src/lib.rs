//! Run-time simulation of schedule tables for conditional process graphs.
//!
//! The schedule table produced by the `cpg-merge` crate is meant to be
//! executed by very simple non-preemptive schedulers distributed over the
//! processing elements of the architecture. This crate simulates that
//! execution for any combination of condition values and checks the
//! properties that only show up at run time:
//!
//! * requirement 4 of the paper — every activation decision depends only on
//!   condition values already known on the local processing element;
//! * feasibility of the tabled activation times — inputs have arrived,
//!   exclusive resources never run two jobs at once;
//! * the actual delay of each execution, which must match the analytical
//!   worst-case delay of the table.
//!
//! # Example
//!
//! ```
//! use cpg::examples;
//! use cpg_merge::{generate_schedule_table, MergeConfig};
//! use cpg_sim::Simulator;
//!
//! let system = examples::diamond();
//! let result = generate_schedule_table(
//!     system.cpg(),
//!     system.arch(),
//!     &MergeConfig::new(system.broadcast_time()),
//! );
//! let sim = Simulator::new(system.cpg(), system.arch(), result.table(), system.broadcast_time());
//! assert!(sim.run_all(result.tracks()).iter().all(|r| r.is_ok()));
//! ```

#![forbid(unsafe_code)]

mod report;
mod simulator;

pub use report::{SimViolation, SimulationReport};
pub use simulator::Simulator;
