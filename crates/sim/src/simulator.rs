//! Execution of a schedule table by distributed run-time schedulers.

use std::collections::HashMap;

use cpg::{Assignment, Cpg, Cube, TrackSet};
use cpg_arch::{Architecture, PeId, Time};
use cpg_path_sched::Job;
use cpg_table::ScheduleTable;

use crate::report::{SimViolation, SimulationReport};

/// Simulator of the run-time behaviour described in Section 3 of the paper:
/// on every programmable processor and bus a trivial non-preemptive scheduler
/// activates processes at the times prescribed by the schedule table, based
/// only on the condition values it has locally observed so far.
///
/// The simulator checks the requirements that the static analysis of
/// `cpg-table` cannot see — in particular requirement 4 (activation decisions
/// depend only on locally known condition values) and the feasibility of the
/// tabled times (inputs arrived, no overlap on exclusive resources) — and
/// measures the actual delay of each execution.
///
/// # Example
///
/// ```
/// use cpg::examples;
/// use cpg_merge::{generate_schedule_table, MergeConfig};
/// use cpg_sim::Simulator;
///
/// let system = examples::fig1();
/// let result = generate_schedule_table(
///     system.cpg(),
///     system.arch(),
///     &MergeConfig::new(system.broadcast_time()),
/// );
/// let simulator = Simulator::new(system.cpg(), system.arch(), result.table(), system.broadcast_time());
/// let reports = simulator.run_all(result.tracks());
/// assert!(reports.iter().all(|r| r.is_ok()));
/// let worst = reports.iter().map(|r| r.delay()).max().unwrap();
/// assert_eq!(worst, result.delta_max());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Simulator<'a> {
    cpg: &'a Cpg,
    arch: &'a Architecture,
    table: &'a ScheduleTable,
    broadcast_time: Time,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for a graph, its architecture, a schedule table
    /// and the condition-broadcast time `τ0`.
    #[must_use]
    pub fn new(
        cpg: &'a Cpg,
        arch: &'a Architecture,
        table: &'a ScheduleTable,
        broadcast_time: Time,
    ) -> Self {
        Simulator {
            cpg,
            arch,
            table,
            broadcast_time,
        }
    }

    /// Executes the table for the combination of condition values given by
    /// `label` (typically the label of one alternative path).
    #[must_use]
    pub fn run(&self, label: &Cube) -> SimulationReport {
        let assignment = Assignment::from_cube(label);
        let mut violations = Vec::new();

        // Active processes and their tabled activation times.
        let mut activations: Vec<(Job, Time, Time)> = Vec::new();
        let mut completion: HashMap<Job, Time> = HashMap::new();
        let mut active: Vec<Job> = Vec::new();
        for pid in self.cpg.schedulable_processes() {
            if !self.cpg.guard(pid).implied_by(label) {
                continue;
            }
            active.push(Job::Process(pid));
        }
        let needs_broadcast = self.arch.computation_elements().count() > 1;
        for cond in label.conditions() {
            if needs_broadcast {
                active.push(Job::Broadcast(cond));
            }
        }

        for &job in &active {
            match self.table.activation_time(job, &assignment) {
                Some(start) => {
                    let end = start + self.duration_of(job);
                    completion.insert(job, end);
                    activations.push((job, start, end));
                }
                None => violations.push(SimViolation::NoActivationTime { job }),
            }
        }
        activations.sort_by_key(|&(job, start, _)| (start, job));

        // When is each condition value known on each processing element?
        let known = self.condition_knowledge(label, &completion, needs_broadcast);

        // Requirement 4: the column that selected each activation only uses
        // locally known condition values.
        for &(job, start, _) in &activations {
            let Some(pe) = self.pe_of(job, &assignment) else {
                continue;
            };
            let column = self.selecting_column(job, &assignment);
            for lit in column.literals() {
                let known_at = known.get(&(lit.cond(), pe)).copied();
                if known_at.is_none_or(|k| k > start) {
                    violations.push(SimViolation::ConditionNotKnownLocally {
                        job,
                        condition: lit.cond(),
                        activation: start,
                        known_at,
                    });
                }
            }
        }

        // Data dependencies: inputs that flow on this execution must have
        // arrived before the activation time.
        for &(job, start, _) in &activations {
            let Some(pid) = job.as_process() else {
                // Broadcasts depend on their disjunction process.
                let cond = job.as_broadcast().expect("job is process or broadcast");
                let disjunction = Job::Process(self.cpg.disjunction_of(cond));
                if let Some(&arrives) = completion.get(&disjunction) {
                    if arrives > start {
                        violations.push(SimViolation::InputNotArrived {
                            job,
                            predecessor: disjunction,
                            activation: start,
                            arrives,
                        });
                    }
                }
                continue;
            };
            for edge in self.cpg.in_edges(pid) {
                let transmits = edge.condition().is_none_or(|lit| label.contains(lit));
                if !transmits {
                    continue;
                }
                let pred = Job::Process(edge.from());
                if let Some(&arrives) = completion.get(&pred) {
                    if arrives > start {
                        violations.push(SimViolation::InputNotArrived {
                            job,
                            predecessor: pred,
                            activation: start,
                            arrives,
                        });
                    }
                }
            }
        }

        // Exclusive resources execute one job at a time.
        for (i, &(a, a_start, a_end)) in activations.iter().enumerate() {
            for &(b, b_start, b_end) in activations.iter().skip(i + 1) {
                let (Some(pa), Some(pb)) = (self.pe_of(a, &assignment), self.pe_of(b, &assignment))
                else {
                    continue;
                };
                if pa != pb || !self.arch.is_exclusive(pa) {
                    continue;
                }
                let overlap = a_start < b_end && b_start < a_end;
                if overlap && a_end > a_start && b_end > b_start {
                    violations.push(SimViolation::ResourceOverlap {
                        pe: pa,
                        first: a,
                        second: b,
                    });
                }
            }
        }

        let delay = activations
            .iter()
            .filter(|(job, _, _)| job.as_process().is_some())
            .map(|&(_, _, end)| end)
            .max()
            .unwrap_or(Time::ZERO);

        SimulationReport {
            label: *label,
            activations,
            delay,
            violations,
        }
    }

    /// Executes the table once per alternative path and returns the reports
    /// in track order.
    #[must_use]
    pub fn run_all(&self, tracks: &TrackSet) -> Vec<SimulationReport> {
        tracks.iter().map(|t| self.run(&t.label())).collect()
    }

    /// The worst observed delay over all alternative paths — must equal the
    /// analytical `δ_max` of the table for a correct table.
    #[must_use]
    pub fn worst_case_delay(&self, tracks: &TrackSet) -> Time {
        self.run_all(tracks)
            .iter()
            .map(SimulationReport::delay)
            .max()
            .unwrap_or(Time::ZERO)
    }

    fn duration_of(&self, job: Job) -> Time {
        match job {
            Job::Process(pid) => self.cpg.exec_time(pid),
            Job::Broadcast(_) => self.broadcast_time,
        }
    }

    /// The resource an activation occupies in this scenario: the mapping for
    /// processes; for broadcasts the bus recorded with the applicable table
    /// entry (the bus the generating schedule actually used), falling back to
    /// the first broadcast bus for tables without provenance.
    fn pe_of(&self, job: Job, assignment: &Assignment) -> Option<PeId> {
        match job {
            Job::Process(pid) => self.cpg.mapping(pid),
            Job::Broadcast(_) => self
                .table
                .activation_resource(job, assignment)
                .or_else(|| self.arch.broadcast_buses().next()),
        }
    }

    /// The column whose expression selected the activation time of `job` in
    /// this scenario (the most specific satisfied column).
    fn selecting_column(&self, job: Job, assignment: &Assignment) -> Cube {
        self.table
            .entries(job)
            .filter(|(column, _)| column.satisfied_by(assignment))
            .map(|(column, _)| column)
            .max_by_key(Cube::len)
            .unwrap_or(Cube::top())
    }

    /// The moment each condition value becomes known on each processing
    /// element: on the processing element of the disjunction process at its
    /// completion, elsewhere when the broadcast completes.
    fn condition_knowledge(
        &self,
        label: &Cube,
        completion: &HashMap<Job, Time>,
        needs_broadcast: bool,
    ) -> HashMap<(cpg::CondId, PeId), Time> {
        let mut known = HashMap::new();
        for lit in label.literals() {
            let cond = lit.cond();
            let disjunction = self.cpg.disjunction_of(cond);
            let computed = completion.get(&Job::Process(disjunction)).copied();
            let broadcast_done = completion.get(&Job::Broadcast(cond)).copied();
            for pe in self.arch.ids() {
                let at = if self.cpg.mapping(disjunction) == Some(pe) {
                    computed
                } else if needs_broadcast {
                    // Remote processing elements learn the value only from
                    // the broadcast; a missing broadcast means they never do.
                    broadcast_done
                } else {
                    computed
                };
                if let Some(at) = at {
                    known.insert((cond, pe), at);
                }
            }
        }
        known
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{enumerate_tracks, examples, ProcessId};
    use cpg_merge::{generate_schedule_table, MergeConfig};

    fn merged(system: &examples::ExampleSystem) -> cpg_merge::MergeResult {
        generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(system.broadcast_time()),
        )
    }

    #[test]
    fn generated_tables_execute_without_violations() {
        for system in [
            examples::diamond(),
            examples::sensor_actuator(),
            examples::fig1(),
        ] {
            let result = merged(&system);
            let simulator = Simulator::new(
                system.cpg(),
                system.arch(),
                result.table(),
                system.broadcast_time(),
            );
            let reports = simulator.run_all(result.tracks());
            for report in &reports {
                assert!(
                    report.is_ok(),
                    "violations on {}: {:?}",
                    report.label(),
                    report.violations()
                );
            }
            // The simulated worst case equals the analytical worst case.
            assert_eq!(
                simulator.worst_case_delay(result.tracks()),
                result.delta_max()
            );
        }
    }

    #[test]
    fn simulated_delay_matches_the_tables_track_delay() {
        let system = examples::fig1();
        let result = merged(&system);
        let simulator = Simulator::new(
            system.cpg(),
            system.arch(),
            result.table(),
            system.broadcast_time(),
        );
        for track in result.tracks().iter() {
            let report = simulator.run(&track.label());
            assert_eq!(
                report.delay(),
                result.table().track_delay(system.cpg(), &track.label())
            );
        }
    }

    #[test]
    fn empty_table_reports_missing_activations() {
        let system = examples::diamond();
        let table = ScheduleTable::new();
        let tracks = enumerate_tracks(system.cpg());
        let simulator =
            Simulator::new(system.cpg(), system.arch(), &table, system.broadcast_time());
        let report = simulator.run(&tracks.tracks()[0].label());
        assert!(!report.is_ok());
        assert!(report
            .violations()
            .iter()
            .all(|v| matches!(v, SimViolation::NoActivationTime { .. })));
    }

    #[test]
    fn premature_activation_of_a_conditional_process_is_detected() {
        use cpg::Cube;
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let c = system.condition("C").unwrap();
        let result = merged(&system);
        let mut table = result.table().clone();

        // Force `hot` (guard C, mapped on cpu1, away from the disjunction on
        // cpu0) to start at time 0: condition C cannot be known there yet.
        let hot = cpg.process_by_name("hot").unwrap();
        let column = Cube::from(c.is_true());
        table.set(cpg_path_sched::Job::Process(hot), column, Time::ZERO);

        let simulator = Simulator::new(cpg, system.arch(), &table, system.broadcast_time());
        let track = tracks
            .iter()
            .find(|t| t.label().contains(c.is_true()))
            .unwrap();
        let report = simulator.run(&track.label());
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, SimViolation::ConditionNotKnownLocally { .. })));
    }

    #[test]
    fn overlapping_activations_are_detected() {
        use cpg::Cube;
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let result = merged(&system);
        let mut table = result.table().clone();
        // Clash two cpu0 processes at the same instant.
        let decide = cpg.process_by_name("decide").unwrap();
        let cold = cpg.process_by_name("cold").unwrap();
        table.set(
            cpg_path_sched::Job::Process(decide),
            Cube::top(),
            Time::ZERO,
        );
        let not_c = Cube::from(system.condition("C").unwrap().is_false());
        table.set(cpg_path_sched::Job::Process(cold), not_c, Time::new(1));
        let simulator = Simulator::new(cpg, system.arch(), &table, system.broadcast_time());
        let track = tracks.iter().find(|t| t.label() == not_c).unwrap();
        let report = simulator.run(&track.label());
        assert!(report.violations().iter().any(|v| matches!(
            v,
            SimViolation::ResourceOverlap { .. } | SimViolation::InputNotArrived { .. }
        )));
    }

    #[test]
    fn missing_broadcast_row_is_reported_as_locally_unknown_condition() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let result = merged(&system);
        let tracks = enumerate_tracks(cpg);
        let c = system.condition("C").unwrap();

        // Remove the broadcast row: remote processors can never learn C.
        let mut table = result.table().clone();
        let broadcast = cpg_path_sched::Job::Broadcast(c);
        let columns: Vec<_> = table.entries(broadcast).map(|(col, _)| col).collect();
        for column in columns {
            table.remove(broadcast, &column);
        }
        assert!(!table.contains_job(broadcast));

        let simulator = Simulator::new(cpg, system.arch(), &table, system.broadcast_time());
        let track = tracks
            .iter()
            .find(|t| t.label().contains(c.is_true()))
            .unwrap();
        let report = simulator.run(&track.label());
        // `hot` runs on the processor that does not compute C, so its guard
        // can never be evaluated there without the broadcast.
        assert!(report.violations().iter().any(|v| matches!(
            v,
            SimViolation::ConditionNotKnownLocally { known_at: None, .. }
        )));
    }

    #[test]
    fn single_processor_systems_need_no_broadcast_rows() {
        use cpg::CpgBuilder;
        use cpg_arch::Architecture;
        let arch = Architecture::builder().processor("solo").build().unwrap();
        let solo = arch.pe_by_name("solo").unwrap();
        let mut b = CpgBuilder::new();
        let c = b.condition("C");
        let root = b.process("root", Time::new(2), solo);
        let x = b.process("x", Time::new(3), solo);
        let y = b.process("y", Time::new(4), solo);
        b.conditional_edge(root, x, c.is_true(), Time::ZERO);
        b.conditional_edge(root, y, c.is_false(), Time::ZERO);
        let cpg = b.build(&arch).unwrap();
        let result = generate_schedule_table(&cpg, &arch, &MergeConfig::new(Time::new(1)));
        let simulator = Simulator::new(&cpg, &arch, result.table(), Time::new(1));
        let reports = simulator.run_all(result.tracks());
        assert!(reports.iter().all(SimulationReport::is_ok));
        assert_eq!(
            simulator.worst_case_delay(result.tracks()),
            result.delta_max()
        );
        // No broadcast activations are simulated on a single processor.
        for report in &reports {
            assert!(report
                .activations()
                .iter()
                .all(|(job, _, _)| job.as_broadcast().is_none()));
        }
    }

    #[test]
    fn report_contains_every_active_process() {
        let system = examples::sensor_actuator();
        let result = merged(&system);
        let simulator = Simulator::new(
            system.cpg(),
            system.arch(),
            result.table(),
            system.broadcast_time(),
        );
        for track in result.tracks().iter() {
            let report = simulator.run(&track.label());
            for &pid in track.processes() {
                if system.cpg().process(pid).kind().is_dummy() {
                    continue;
                }
                assert!(
                    report
                        .activation_of(cpg_path_sched::Job::Process(pid))
                        .is_some(),
                    "{} not simulated",
                    system.cpg().process(pid).name()
                );
            }
            let _ = ProcessId::from_index(0);
        }
    }
}
