//! `cps` — Conditional Process Scheduling: an umbrella crate bundling the
//! reproduction of Eles, Kuchcinski, Peng, Doboli and Pop, *"Scheduling of
//! Conditional Process Graphs for the Synthesis of Embedded Systems"*
//! (DATE 1998).
//!
//! The workspace is organised as one crate per subsystem; this crate simply
//! re-exports them under stable module names so that applications (and the
//! examples and integration tests of this repository) need a single
//! dependency:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`arch`] | `cpg-arch` | target architecture: processors, ASICs, buses, time |
//! | [`model`] | `cpg` | condition algebra, conditional process graph, tracks |
//! | [`path_sched`] | `cpg-path-sched` | list scheduling of individual alternative paths |
//! | [`table`] | `cpg-table` | schedule table, correctness requirements, `δ_max` |
//! | [`merge`] | `cpg-merge` | schedule merging / table generation (the paper's contribution) |
//! | [`sim`] | `cpg-sim` | run-time simulator of schedule tables |
//! | [`gen`] | `cpg-gen` | random workload generator of Section 6 |
//! | [`atm`] | `cpg-atm` | ATM OAM (F4) real-life example of Table 2 |
//!
//! # Quick start
//!
//! ```
//! use cps::prelude::*;
//!
//! // A two-processor platform with a shared bus.
//! let arch = Architecture::builder()
//!     .processor("cpu0")
//!     .processor("cpu1")
//!     .bus("bus")
//!     .build()?;
//! let cpu0 = arch.pe_by_name("cpu0").unwrap();
//! let cpu1 = arch.pe_by_name("cpu1").unwrap();
//!
//! // An application whose control flow depends on a run-time condition.
//! let mut builder = Cpg::builder();
//! let c = builder.condition("obstacle");
//! let sense = builder.process("sense", Time::new(2), cpu0);
//! let brake = builder.process("brake", Time::new(4), cpu1);
//! let cruise = builder.process("cruise", Time::new(3), cpu0);
//! builder.conditional_edge(sense, brake, c.is_true(), Time::new(1));
//! builder.conditional_edge(sense, cruise, c.is_false(), Time::new(0));
//! let cpg = builder.build(&arch)?;
//! let cpg = expand_communications(&cpg, &arch, BusPolicy::FirstBus)?;
//!
//! // Generate the schedule table and check it end to end.
//! let result = generate_schedule_table(&cpg, &arch, &MergeConfig::new(Time::new(1)));
//! result.table().verify(&cpg, result.tracks()).expect("table is correct");
//! let sim = Simulator::new(&cpg, &arch, result.table(), Time::new(1));
//! assert!(sim.run_all(result.tracks()).iter().all(|r| r.is_ok()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

/// Target architecture model (re-export of `cpg-arch`).
pub mod arch {
    pub use cpg_arch::*;
}

/// Conditional process graph model (re-export of `cpg`).
pub mod model {
    pub use cpg::*;
}

/// List scheduling of individual alternative paths (re-export of
/// `cpg-path-sched`).
pub mod path_sched {
    pub use cpg_path_sched::*;
}

/// Schedule table and correctness requirements (re-export of `cpg-table`).
pub mod table {
    pub use cpg_table::*;
}

/// Schedule merging / table generation (re-export of `cpg-merge`).
pub mod merge {
    pub use cpg_merge::*;
}

/// Run-time simulation of schedule tables (re-export of `cpg-sim`).
pub mod sim {
    pub use cpg_sim::*;
}

/// Random workload generation (re-export of `cpg-gen`).
pub mod gen {
    pub use cpg_gen::*;
}

/// ATM OAM real-life example (re-export of `cpg-atm`).
pub mod atm {
    pub use cpg_atm::*;
}

/// The most commonly used items of every subsystem, for glob import.
pub mod prelude {
    pub use cpg::{
        enumerate_tracks, expand_communications, Assignment, BusPolicy, CondId, Cpg, CpgBuilder,
        Cube, EditError, EditScope, Guard, Literal, ProcessId, ProcessKind, SystemEdit, Track,
        TrackSet,
    };
    pub use cpg_arch::{Architecture, PeId, PeKind, Time};
    pub use cpg_atm::{CpuModel, OamMode, OamPlatform};
    pub use cpg_gen::{generate, GeneratorConfig};
    pub use cpg_merge::{
        condition_oblivious_baseline, generate_schedule_table, MergeConfig, MergeResult,
        MergeSession, ReuseStats, SelectionPolicy,
    };
    pub use cpg_path_sched::{
        Job, ListScheduler, LockSet, PathSchedule, RunScratch, SlippedLock, TrackContext,
    };
    pub use cpg_sim::{SimViolation, SimulationReport, Simulator};
    pub use cpg_table::{ScheduleTable, TableViolation};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_entry_points() {
        use crate::prelude::*;
        let system = cpg::examples::diamond();
        let result = generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(system.broadcast_time()),
        );
        assert!(result.delta_max() >= result.delta_m());
    }
}
