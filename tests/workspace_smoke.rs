//! Workspace smoke test: `cps::prelude` must cover every public entry point
//! named in the module table of `src/lib.rs`.
//!
//! The module table maps `arch`, `model`, `path_sched`, `table`, `merge`,
//! `sim`, `gen` and `atm` onto the subsystem crates; the prelude re-exports
//! the headline items of each. The checks below are compile-time: `same_type`
//! and `same_fn` only type-check when both paths name the *same* type or
//! function, so dropping or redirecting a re-export breaks this test at
//! build time.

use std::marker::PhantomData;

fn same_type<T>(_: PhantomData<T>, _: PhantomData<T>) {}
fn same_fn<T: Copy>(_: T, _: T) {}

macro_rules! assert_reexported_type {
    ($($prelude:ty = $module:ty),+ $(,)?) => {
        $(same_type(PhantomData::<$prelude>, PhantomData::<$module>);)+
    };
}

#[test]
fn prelude_covers_the_arch_module() {
    assert_reexported_type!(
        cps::prelude::Architecture = cps::arch::Architecture,
        cps::prelude::PeId = cps::arch::PeId,
        cps::prelude::PeKind = cps::arch::PeKind,
        cps::prelude::Time = cps::arch::Time,
    );
}

#[test]
fn prelude_covers_the_model_module() {
    assert_reexported_type!(
        cps::prelude::Assignment = cps::model::Assignment,
        cps::prelude::BusPolicy = cps::model::BusPolicy,
        cps::prelude::CondId = cps::model::CondId,
        cps::prelude::Cpg = cps::model::Cpg,
        cps::prelude::CpgBuilder = cps::model::CpgBuilder,
        cps::prelude::Cube = cps::model::Cube,
        cps::prelude::Guard = cps::model::Guard,
        cps::prelude::Literal = cps::model::Literal,
        cps::prelude::ProcessId = cps::model::ProcessId,
        cps::prelude::ProcessKind = cps::model::ProcessKind,
        cps::prelude::Track = cps::model::Track,
        cps::prelude::TrackSet = cps::model::TrackSet,
    );
    same_fn(cps::prelude::enumerate_tracks, cps::model::enumerate_tracks);
    same_fn(
        cps::prelude::expand_communications,
        cps::model::expand_communications,
    );
}

#[test]
fn prelude_covers_the_path_sched_module() {
    assert_reexported_type!(
        cps::prelude::Job = cps::path_sched::Job,
        cps::prelude::ListScheduler<'static> = cps::path_sched::ListScheduler<'static>,
        cps::prelude::PathSchedule = cps::path_sched::PathSchedule,
    );
}

#[test]
fn prelude_covers_the_table_module() {
    assert_reexported_type!(
        cps::prelude::ScheduleTable = cps::table::ScheduleTable,
        cps::prelude::TableViolation = cps::table::TableViolation,
    );
}

#[test]
fn prelude_covers_the_merge_module() {
    assert_reexported_type!(
        cps::prelude::MergeConfig = cps::merge::MergeConfig,
        cps::prelude::MergeResult = cps::merge::MergeResult,
        cps::prelude::SelectionPolicy = cps::merge::SelectionPolicy,
    );
    same_fn(
        cps::prelude::generate_schedule_table,
        cps::merge::generate_schedule_table,
    );
    same_fn(
        cps::prelude::condition_oblivious_baseline,
        cps::merge::condition_oblivious_baseline,
    );
}

#[test]
fn prelude_covers_the_sim_module() {
    assert_reexported_type!(
        cps::prelude::SimViolation = cps::sim::SimViolation,
        cps::prelude::SimulationReport = cps::sim::SimulationReport,
        cps::prelude::Simulator<'static> = cps::sim::Simulator<'static>,
    );
}

#[test]
fn prelude_covers_the_gen_module() {
    assert_reexported_type!(cps::prelude::GeneratorConfig = cps::gen::GeneratorConfig,);
    same_fn(cps::prelude::generate, cps::gen::generate);
}

#[test]
fn prelude_covers_the_atm_module() {
    assert_reexported_type!(
        cps::prelude::CpuModel = cps::atm::CpuModel,
        cps::prelude::OamMode = cps::atm::OamMode,
        cps::prelude::OamPlatform = cps::atm::OamPlatform,
    );
}

/// The prelude alone must be enough to drive the full pipeline of the
/// quick-start: build an architecture, generate a system, produce a table,
/// verify it and simulate every scenario.
#[test]
fn prelude_drives_the_full_pipeline() {
    use cps::prelude::*;

    let config = GeneratorConfig::new(20, 4).with_seed(7);
    let system = generate(&config);
    let result = generate_schedule_table(
        system.cpg(),
        system.arch(),
        &MergeConfig::new(system.broadcast_time()),
    );
    result
        .table()
        .verify(system.cpg(), result.tracks())
        .expect("generated table satisfies requirements 1-3");
    let simulator = Simulator::new(
        system.cpg(),
        system.arch(),
        result.table(),
        system.broadcast_time(),
    );
    assert!(simulator.run_all(result.tracks()).iter().all(|r| r.is_ok()));
    assert!(result.delta_max() >= result.delta_m());
}
