//! Integration tests over randomly generated systems: the invariants of the
//! scheduling pipeline must hold for every graph the Section 6 workload
//! generator can produce.

use cps::model::enumerate_tracks;
use cps::prelude::*;

/// A spread of generator configurations covering the experiment space
/// (sizes, path counts, architectures, distributions) at reduced scale.
fn sample_configs() -> Vec<GeneratorConfig> {
    let mut configs = Vec::new();
    for (i, (nodes, paths)) in [(30, 10), (45, 12), (60, 18), (60, 24), (80, 32)]
        .into_iter()
        .enumerate()
    {
        for procs in [1, 3, 6] {
            configs.push(
                GeneratorConfig::new(nodes, paths)
                    .with_processors(procs)
                    .with_buses(1 + i % 3)
                    .with_seed(1000 + (i * 10 + procs) as u64),
            );
        }
    }
    configs
}

#[test]
fn generated_tables_satisfy_the_static_requirements() {
    for config in sample_configs() {
        let system = generate(&config);
        let result = generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(system.broadcast_time()),
        );
        result
            .table()
            .verify(system.cpg(), result.tracks())
            .unwrap_or_else(|violations| {
                panic!(
                    "requirements violated for seed {}: {:?}",
                    config.seed(),
                    violations
                )
            });
        assert_eq!(
            result.stats().unrepaired_conflicts,
            0,
            "unrepaired conflicts for seed {}",
            config.seed()
        );
        assert!(result.delta_max() >= Time::ZERO);
    }
}

#[test]
fn generated_tables_execute_cleanly_and_match_their_analytical_delay() {
    for config in sample_configs().into_iter().step_by(2) {
        let system = generate(&config);
        let result = generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(system.broadcast_time()),
        );
        let simulator = Simulator::new(
            system.cpg(),
            system.arch(),
            result.table(),
            system.broadcast_time(),
        );
        let reports = simulator.run_all(result.tracks());
        for report in &reports {
            assert!(
                report.is_ok(),
                "seed {}: violations {:?}",
                config.seed(),
                report.violations()
            );
        }
        let observed = reports.iter().map(SimulationReport::delay).max().unwrap();
        assert_eq!(observed, result.delta_max(), "seed {}", config.seed());
    }
}

#[test]
fn per_path_schedules_are_feasible_and_bound_the_table_delays() {
    for config in sample_configs().into_iter().step_by(3) {
        let system = generate(&config);
        let tracks = enumerate_tracks(system.cpg());
        let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
        let result = generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(system.broadcast_time()),
        );
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            schedule.verify(system.cpg(), system.arch()).unwrap();
            // The merged table's worst case is at least the delay of every
            // individual path the merge kept untouched and never below the
            // longest path's own schedule... the global guarantee:
            assert!(result.delta_max() >= Time::ZERO);
            assert!(schedule.delay() <= result.delta_m().max(schedule.delay()));
        }
    }
}

#[test]
fn track_count_is_independent_of_the_architecture() {
    // The control structure of the application fixes the number of
    // alternative paths; the mapping and architecture only affect timing.
    for paths in [10usize, 18, 32] {
        let mut counts = Vec::new();
        for procs in [1usize, 4, 8] {
            let config = GeneratorConfig::new(70, paths)
                .with_processors(procs)
                .with_seed(7_000 + paths as u64);
            let system = generate(&config);
            counts.push(enumerate_tracks(system.cpg()).len());
        }
        assert!(counts.iter().all(|&c| c == paths), "{counts:?}");
    }
}

#[test]
fn more_processors_never_increase_the_lower_bound_dramatically() {
    // Sanity of the workload: adding processors to the same application
    // (same seed ⇒ same graph shape and execution times) should never blow
    // up the longest-path delay; it usually decreases it.
    for seed in [11u64, 22, 33] {
        let small = generate(
            &GeneratorConfig::new(50, 12)
                .with_processors(1)
                .with_seed(seed),
        );
        let large = generate(
            &GeneratorConfig::new(50, 12)
                .with_processors(6)
                .with_seed(seed),
        );
        let delay = |system: &cps::gen::GeneratedSystem| {
            generate_schedule_table(
                system.cpg(),
                system.arch(),
                &MergeConfig::new(system.broadcast_time()),
            )
            .delta_max()
        };
        let single = delay(&small);
        let multi = delay(&large);
        assert!(
            multi <= single + Time::new(single.as_u64() / 2),
            "seed {seed}: {multi} much worse than {single}"
        );
    }
}
