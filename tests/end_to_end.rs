//! End-to-end integration tests: the full pipeline (model → path scheduling →
//! merging → verification → simulation) on the example systems.

use cps::model::examples;
use cps::prelude::*;

fn pipeline(system: &examples::ExampleSystem) -> MergeResult {
    generate_schedule_table(
        system.cpg(),
        system.arch(),
        &MergeConfig::new(system.broadcast_time()),
    )
}

#[test]
fn fig1_pipeline_produces_a_correct_and_tight_table() {
    let system = examples::fig1();
    let result = pipeline(&system);

    // Structure of the example matches the paper.
    assert_eq!(result.tracks().len(), 6);
    assert_eq!(system.cpg().ordinary_processes().count(), 17);
    assert_eq!(system.cpg().communication_processes().count(), 14);

    // Static checks: requirements 1-3.
    result
        .table()
        .verify(system.cpg(), result.tracks())
        .expect("requirements 1-3 hold");

    // Dynamic checks: requirement 4 plus feasibility, via the simulator.
    let simulator = Simulator::new(
        system.cpg(),
        system.arch(),
        result.table(),
        system.broadcast_time(),
    );
    let reports = simulator.run_all(result.tracks());
    assert!(reports.iter().all(SimulationReport::is_ok));

    // The analytical worst case is what the simulator observes, and the
    // longest path keeps its optimal delay (the headline property of the
    // merging strategy; the paper obtains delta_max = delta_M for Fig. 1).
    let observed = reports.iter().map(|r| r.delay()).max().unwrap();
    assert_eq!(observed, result.delta_max());
    assert_eq!(result.delta_max(), result.delta_m());
}

#[test]
fn every_example_system_round_trips_through_the_pipeline() {
    for system in [
        examples::diamond(),
        examples::sensor_actuator(),
        examples::fig1(),
    ] {
        let result = pipeline(&system);
        result
            .table()
            .verify(system.cpg(), result.tracks())
            .expect("requirements 1-3 hold");
        assert_eq!(result.stats().unrepaired_conflicts, 0);

        let simulator = Simulator::new(
            system.cpg(),
            system.arch(),
            result.table(),
            system.broadcast_time(),
        );
        for (track, schedule) in result.tracks().iter().zip(result.path_schedules()) {
            // Individual path schedules are feasible.
            schedule.verify(system.cpg(), system.arch()).unwrap();
            // The table can never beat the per-path schedule's own delay by
            // more than the slack the heuristic left (i.e. it is a real
            // schedule for that path).
            let report = simulator.run(&track.label());
            assert!(report.is_ok(), "violations: {:?}", report.violations());
            assert_eq!(
                report.delay(),
                result.table().track_delay(system.cpg(), &track.label())
            );
        }
    }
}

#[test]
fn table_activation_times_are_deterministic_per_scenario() {
    let system = examples::fig1();
    let result = pipeline(&system);
    // For every alternative path and every process on it there is exactly one
    // applicable activation time (requirement 2 + 3 combined, queried through
    // the public API).
    for track in result.tracks().iter() {
        for &pid in track.processes() {
            if system.cpg().process(pid).kind().is_dummy() {
                continue;
            }
            let time = result
                .table()
                .activation_on_track(Job::Process(pid), &track.label());
            assert!(
                time.is_some(),
                "{} has no activation on {}",
                system.cpg().process(pid).name(),
                system.cpg().display_cube(&track.label())
            );
        }
    }
}

#[test]
fn merged_table_is_robust_to_the_broadcast_time() {
    let system = examples::sensor_actuator();
    let mut last_delay = Time::ZERO;
    for tau0 in [0u64, 1, 2, 4, 8] {
        let result = generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(Time::new(tau0)),
        );
        result
            .table()
            .verify(system.cpg(), result.tracks())
            .expect("requirements hold for every tau0");
        // Larger broadcast times can only increase the worst case.
        assert!(result.delta_max() >= last_delay);
        last_delay = result.delta_max();
    }
}

#[test]
fn baseline_and_merged_tables_agree_on_unconditional_processes() {
    let system = examples::diamond();
    let merged = pipeline(&system);
    let baseline =
        condition_oblivious_baseline(system.cpg(), system.arch(), system.broadcast_time());
    // Both schedulers place the unconditional root process at time zero.
    let decide = system.cpg().process_by_name("decide").unwrap();
    assert_eq!(
        baseline.table().get(Job::Process(decide), &Cube::top()),
        Some(Time::ZERO)
    );
    assert_eq!(
        merged
            .table()
            .activation_on_track(Job::Process(decide), &merged.tracks().tracks()[0].label()),
        Some(Time::ZERO)
    );
}

#[test]
fn umbrella_modules_expose_every_subsystem() {
    // Spot-check that the re-exported module hierarchy is usable as shown in
    // the README.
    let arch: cps::arch::Architecture = cps::arch::Architecture::builder()
        .processor("p")
        .build()
        .unwrap();
    assert_eq!(arch.len(), 1);
    let system = cps::model::examples::diamond();
    assert_eq!(cps::model::enumerate_tracks(system.cpg()).len(), 2);
    let _table = cps::table::ScheduleTable::new();
    let _config = cps::merge::MergeConfig::default();
    let _gen = cps::gen::GeneratorConfig::new(10, 2);
    assert_eq!(cps::atm::OamMode::Monitoring.process_count(), 32);
}
