//! Differential test of incremental re-merge sessions against cold merges.
//!
//! A [`MergeSession`] keeps the explored decision tree between merges and,
//! after an edit, replays the cached write logs of every subtree the edit
//! provably cannot affect, re-walking only the invalidated region —
//! speculatively when the thread budget allows. None of that is allowed to
//! change a single table cell: after *every* edit of a random edit sequence,
//! the session's warm merge must be bit-identical (table, tracks, path
//! schedules, steps, counters, delays) to a cold `generate_schedule_table`
//! of the edited system, at thread counts 1/2/4, and on a crafted system
//! where the edited process sits under a condition subtree shared between
//! sibling branches (so cached chains on the clean side must replay against
//! rows the re-walked side rewrites).

use proptest::prelude::*;

use cps::merge::MergeStats;
use cps::prelude::*;

/// Generator configurations biased towards deep condition nests (many paths
/// over few processes), where the session's chain cache holds the most
/// subtrees; kept close to `tests/merge_walk_differential.rs` so the suites
/// explore the same system space.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        12usize..32,
        2usize..8,
        1usize..4,
        1usize..3,
        any::<u64>(),
        prop::bool::ANY,
    )
        .prop_map(|(nodes, paths, processors, buses, seed, exponential)| {
            let distribution = if exponential {
                cps::gen::ExecTimeDistribution::Exponential { mean: 7.0 }
            } else {
                cps::gen::ExecTimeDistribution::Uniform { min: 1, max: 15 }
            };
            GeneratorConfig::new(nodes.max(3 * paths), paths)
                .with_processors(processors)
                .with_buses(buses)
                .with_distribution(distribution)
                .with_seed(seed)
        })
}

/// A sequence of single-node WCET edits: `(process selector, new time)`
/// pairs, resolved against the generated system's ordinary processes at run
/// time (selector modulo process count, so every raw index is valid).
fn edit_sequence_strategy() -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((any::<usize>(), 1u64..16), 1..5)
}

/// Field-wise equality of a warm session merge against the cold oracle
/// (`MergeResult` deliberately does not implement `PartialEq`; comparing the
/// pieces gives usable failure messages).
fn assert_results_identical(
    cold: &MergeResult,
    warm: &MergeResult,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(cold.table() == warm.table(), "table diverged ({context})");
    prop_assert_eq!(cold.tracks(), warm.tracks());
    prop_assert!(
        cold.path_schedules() == warm.path_schedules(),
        "path schedules diverged ({context})"
    );
    prop_assert_eq!(cold.delta_m(), warm.delta_m());
    prop_assert_eq!(cold.delta_max(), warm.delta_max());
    prop_assert_eq!(cold.steps(), warm.steps());
    let (cold_stats, warm_stats): (MergeStats, MergeStats) = (cold.stats(), warm.stats());
    prop_assert!(
        cold_stats == warm_stats,
        "stats diverged ({context}): {cold_stats:?} vs {warm_stats:?}"
    );
    Ok(())
}

proptest! {
    // Pinned case count and shrink budget: CI runs must be deterministic and
    // fast regardless of PROPTEST_CASES / PROPTEST_MAX_SHRINK_ITERS in the
    // environment.
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn warm_session_merges_match_cold_merges_after_every_edit(
        config in config_strategy(),
        edits in edit_sequence_strategy(),
    ) {
        let system = generate(&config);
        let processes: Vec<ProcessId> = system.cpg().ordinary_processes().collect();
        prop_assert!(!processes.is_empty(), "generated systems have ordinary processes");
        // Tracing on: the step-by-step visit order is part of the contract —
        // a replayed chain must surface the very steps it recorded.
        let base = MergeConfig::new(system.broadcast_time()).with_trace(true);

        for threads in [1usize, 2, 4] {
            let merge_config = base.with_threads(threads);
            let mut session = MergeSession::new(system.cpg(), system.arch(), &merge_config);
            // The reference system receives the same edits and is merged
            // cold (from nothing) after each one.
            let mut reference = system.cpg().clone();

            let cold = generate_schedule_table(&reference, system.arch(), &merge_config);
            assert_results_identical(&cold, &session.merge(), &format!("cold, {threads} threads"))?;

            for (step, &(selector, time)) in edits.iter().enumerate() {
                let edit = SystemEdit::ExecTime {
                    process: processes[selector % processes.len()],
                    time: Time::new(time),
                };
                edit.apply(&mut reference).expect("ordinary processes are editable");
                session.apply_edit(&edit).expect("ordinary processes are editable");

                let cold = generate_schedule_table(&reference, system.arch(), &merge_config);
                let warm = session.merge();
                assert_results_identical(
                    &cold,
                    &warm,
                    &format!("edit {step} ({edit}), {threads} threads"),
                )?;
            }
        }
    }
}

/// Crafted system where the edited process sits under a condition subtree
/// shared between sibling branches: `C2` forks inside *both* branches of
/// `C1`, so the per-branch tracks interleave their writes in shared table
/// rows (the conjunction `sink` and the `C2` broadcast land in compatible
/// columns on every path). Editing `b_t` dirties only the `C2`-true tracks;
/// the cached chains of the `C2`-false subtrees — including the root chain,
/// whose serial position precedes every re-walked sibling — must replay
/// their logs, while chains ordered *after* a re-walked subtree see its
/// rewritten rows and the content-based read validation degrades them to a
/// re-walk. Either way the result must be bit-identical to a cold merge.
fn shared_subtree_system() -> (Architecture, Cpg) {
    let arch = Architecture::builder()
        .processor("cpu0")
        .processor("cpu1")
        .bus("bus")
        .build()
        .unwrap();
    let cpu0 = arch.pe_by_name("cpu0").unwrap();
    let cpu1 = arch.pe_by_name("cpu1").unwrap();
    let mut b = CpgBuilder::new();
    let c1 = b.condition("C1");
    let c2 = b.condition("C2");
    let root = b.process("root", Time::new(4), cpu0);
    let mid = b.process("mid", Time::new(4), cpu0);
    let a_t = b.process("a_t", Time::new(3), cpu1);
    let a_f = b.process("a_f", Time::new(6), cpu1);
    let b_t = b.process("b_t", Time::new(2), cpu1);
    let b_f = b.process("b_f", Time::new(5), cpu1);
    let sink = b.process("sink", Time::new(2), cpu1);
    b.conditional_edge(root, a_t, c1.is_true(), Time::ZERO);
    b.conditional_edge(root, a_f, c1.is_false(), Time::ZERO);
    b.simple_edge(root, mid, Time::ZERO);
    b.conditional_edge(mid, b_t, c2.is_true(), Time::ZERO);
    b.conditional_edge(mid, b_f, c2.is_false(), Time::ZERO);
    b.simple_edge(a_t, sink, Time::ZERO);
    b.simple_edge(a_f, sink, Time::ZERO);
    b.simple_edge(b_t, sink, Time::ZERO);
    b.simple_edge(b_f, sink, Time::ZERO);
    b.mark_conjunction(sink);
    let cpg = b.build(&arch).unwrap();
    (arch, cpg)
}

#[test]
fn warm_merges_match_cold_on_a_shared_condition_subtree_edit() {
    let (arch, cpg) = shared_subtree_system();
    let b_t = cpg
        .ordinary_processes()
        .find(|&p| cpg.process(p).name() == "b_t")
        .expect("crafted system has b_t");
    let base = MergeConfig::new(Time::new(1)).with_trace(true);

    for threads in [1usize, 2, 4] {
        let merge_config = base.with_threads(threads);
        let mut session = MergeSession::new(&cpg, &arch, &merge_config);
        session.merge();
        let mut reference = cpg.clone();
        assert!(
            enumerate_tracks(&cpg).len() >= 4,
            "both conditions must fork"
        );

        let mut replayed_after_some_edit = false;
        // Walk b_t's WCET up and back down; every step dirties only the
        // C2-true tracks.
        for (step, time) in [3u64, 4, 2].into_iter().enumerate() {
            let edit = SystemEdit::ExecTime {
                process: b_t,
                time: Time::new(time),
            };
            edit.apply(&mut reference).expect("b_t is editable");
            session.apply_edit(&edit).expect("b_t is editable");

            let cold = generate_schedule_table(&reference, &arch, &merge_config);
            let warm = session.merge();
            assert_eq!(
                cold.table(),
                warm.table(),
                "table diverged at edit {step}, {threads} threads"
            );
            assert_eq!(cold.path_schedules(), warm.path_schedules());
            assert_eq!(cold.steps(), warm.steps());
            assert_eq!(cold.stats(), warm.stats());
            assert_eq!(cold.delta_max(), warm.delta_max());
            replayed_after_some_edit |= session.reuse_stats().chains_replayed > 0;
        }
        assert!(
            replayed_after_some_edit,
            "the clean C2-false subtrees never replayed at {threads} threads"
        );
    }
}
