//! The four correctness requirements of Section 3 of the paper, tested one by
//! one against generated schedule tables.
//!
//! 1. A process is never activated in a column whose expression does not
//!    guarantee its guard.
//! 2. Alternative activation times of the same process sit in mutually
//!    exclusive columns (the run-time decision is deterministic).
//! 3. Whenever a guard becomes true during an execution, the process has an
//!    applicable activation time.
//! 4. An activation decision at time `t` on processing element `M(Pi)` uses
//!    only condition values already determined and known on `M(Pi)` at `t`.

use cps::model::examples;
use cps::prelude::*;

fn systems() -> Vec<examples::ExampleSystem> {
    vec![
        examples::diamond(),
        examples::sensor_actuator(),
        examples::fig1(),
    ]
}

fn merge(system: &examples::ExampleSystem) -> MergeResult {
    generate_schedule_table(
        system.cpg(),
        system.arch(),
        &MergeConfig::new(system.broadcast_time()),
    )
}

#[test]
fn requirement_1_every_column_implies_the_guard_of_its_row() {
    for system in systems() {
        let result = merge(&system);
        for (job, column, _) in result.table().all_entries() {
            let guard = match job {
                Job::Process(pid) => system.cpg().guard(pid).clone(),
                Job::Broadcast(cond) => system
                    .cpg()
                    .guard(system.cpg().disjunction_of(cond))
                    .clone(),
            };
            assert!(
                guard.implied_by(&column),
                "{job} activated under `{column}` although its guard is `{guard}`"
            );
        }
    }
}

#[test]
fn requirement_2_alternative_times_live_in_exclusive_columns() {
    for system in systems() {
        let result = merge(&system);
        for job in result.table().jobs() {
            let entries: Vec<(Cube, Time)> = result.table().entries(job).collect();
            for (i, (first_col, first_time)) in entries.iter().enumerate() {
                for (second_col, second_time) in entries.iter().skip(i + 1) {
                    if first_time != second_time {
                        assert!(
                            first_col.excludes(second_col),
                            "{job}: {first_time} under `{first_col}` and {second_time} under `{second_col}` can both apply"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn requirement_3_every_true_guard_gets_an_activation() {
    for system in systems() {
        let result = merge(&system);
        for track in result.tracks().iter() {
            for pid in system.cpg().schedulable_processes() {
                let applies = system.cpg().guard(pid).implied_by(&track.label());
                let activation = result
                    .table()
                    .activation_on_track(Job::Process(pid), &track.label());
                if applies {
                    assert!(
                        activation.is_some(),
                        "{} must be activated on {}",
                        system.cpg().process(pid).name(),
                        system.cpg().display_cube(&track.label())
                    );
                } else {
                    assert!(
                        activation.is_none(),
                        "{} must not be activated on {}",
                        system.cpg().process(pid).name(),
                        system.cpg().display_cube(&track.label())
                    );
                }
            }
        }
    }
}

#[test]
fn requirement_4_decisions_use_only_locally_known_conditions() {
    // Checked operationally: the simulator replays every execution with the
    // distributed-scheduler semantics and reports any activation whose column
    // refers to a condition not yet known on the local processing element.
    for system in systems() {
        let result = merge(&system);
        let simulator = Simulator::new(
            system.cpg(),
            system.arch(),
            result.table(),
            system.broadcast_time(),
        );
        for report in simulator.run_all(result.tracks()) {
            assert!(
                !report.violations().iter().any(|violation| matches!(
                    violation,
                    SimViolation::ConditionNotKnownLocally { .. }
                )),
                "requirement 4 violated on {}: {:?}",
                system.cpg().display_cube(&report.label()),
                report.violations()
            );
        }
    }
}

#[test]
fn condition_values_are_broadcast_after_their_disjunction_process() {
    // The communication strategy of Section 3: after a disjunction process
    // terminates, the value is broadcast to all other processors on the first
    // available bus; the broadcast time is the same for all conditions.
    for system in systems() {
        if system.arch().computation_elements().count() < 2 {
            continue;
        }
        let result = merge(&system);
        for track in result.tracks().iter() {
            for cond in track.determined_conditions() {
                let broadcast = result
                    .table()
                    .activation_on_track(Job::Broadcast(cond), &track.label())
                    .expect("every determined condition is broadcast");
                let disjunction = result
                    .table()
                    .activation_on_track(
                        Job::Process(system.cpg().disjunction_of(cond)),
                        &track.label(),
                    )
                    .expect("the disjunction process is scheduled");
                let termination =
                    disjunction + system.cpg().exec_time(system.cpg().disjunction_of(cond));
                assert!(
                    broadcast >= termination,
                    "broadcast of {} at {broadcast} precedes its disjunction termination {termination}",
                    system.cpg().condition_name(cond)
                );
            }
        }
    }
}
