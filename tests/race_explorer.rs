//! Deterministic interleaving exploration of the speculative merge walk.
//!
//! Compiled only with the `race-check` feature (`cargo test --features
//! race-check --test race_explorer`): `fj::race::explore` replaces real
//! thread spawning with a virtual scheduler, enumerating or sampling the
//! interleavings of the forked walk at its yield points (fork, work-queue
//! pop, speculative write, validate, commit) while vector clocks check every
//! instrumented table access for happens-before ordering and the commit
//! hooks check the "back commits only after validation" protocol.
//!
//! The suite proves three things:
//!
//! 1. **No violation on the current tree** — exhaustive enumeration of every
//!    2- and 3-worker-fork interleaving on small crafted systems (the
//!    schedule counts are printed), plus seeded random walks on the PR 6
//!    validation-failure system, all clean and all bit-identical to the
//!    serial walk.
//! 2. **The detector is not vacuous** — re-introducing the known
//!    commit-order bug (committing the back-branch log without validation,
//!    `cpg_merge::sabotage`) is flagged as a stale-commit protocol
//!    violation, and the offending schedule replays deterministically from
//!    the recorded choice trace and from its printed seed.
//! 3. **Found schedules stay found** — the banked corpus under
//!    `tests/corpus/race_schedules/` replays known bug-exposing schedules
//!    against the sabotaged walk and asserts each is still detected.
//! 4. **The partition index keeps the scan footprint** — the index-served
//!    row scans (`for_each_compatible_entry_on`, `for_each_entry_at_on`)
//!    race with an unordered row write on exactly the same row cell the
//!    linear keyed scan raced on, and the banked corpus replays over the
//!    indexed walk clean and bit-identical.
//!
//! Every test takes one shared lock: the sabotage switch is process-global,
//! so a mutation test running concurrently with a cleanliness test would
//! poison the latter's expectations.

#![cfg(feature = "race-check")]

use std::sync::Mutex;

use cpg_merge::sabotage;
use cpg_table::TableView;
use cps::prelude::*;
use fj::race::{self, ExploreConfig, Mode, Report, Violation};

/// Serializes the explorer tests: `sabotage` is process-global state, and a
/// clean-tree assertion must never overlap a test that engages it.
static EXPLORER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXPLORER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The smallest system whose merge forks: one condition, two tracks, one
/// speculative fork at the root of the decision tree. Small enough that the
/// full interleaving space of a 2-worker fork stays exhaustively enumerable.
fn diamond_system() -> (Architecture, Cpg) {
    let arch = Architecture::builder()
        .processor("cpu0")
        .processor("cpu1")
        .bus("bus")
        .build()
        .unwrap();
    let cpu0 = arch.pe_by_name("cpu0").unwrap();
    let cpu1 = arch.pe_by_name("cpu1").unwrap();
    let mut b = CpgBuilder::new();
    let c = b.condition("C");
    let root = b.process("root", Time::new(4), cpu0);
    let a_t = b.process("a_t", Time::new(3), cpu1);
    let a_f = b.process("a_f", Time::new(5), cpu1);
    let sink = b.process("sink", Time::new(2), cpu1);
    b.conditional_edge(root, a_t, c.is_true(), Time::ZERO);
    b.conditional_edge(root, a_f, c.is_false(), Time::ZERO);
    b.simple_edge(a_t, sink, Time::ZERO);
    b.simple_edge(a_f, sink, Time::ZERO);
    b.mark_conjunction(sink);
    let cpg = b.build(&arch).unwrap();
    (arch, cpg)
}

/// The PR 6 crafted system whose sibling subtrees deterministically write
/// overlapping rows, forcing the back speculation's validation to fail at
/// every forked node — the system that exercises the discard-and-re-run
/// path, and (under sabotage) the one where skipping validation commits a
/// genuinely stale log. Copied from `tests/merge_walk_differential.rs`.
fn overlapping_rows_system() -> (Architecture, Cpg) {
    let arch = Architecture::builder()
        .processor("cpu0")
        .processor("cpu1")
        .bus("bus")
        .build()
        .unwrap();
    let cpu0 = arch.pe_by_name("cpu0").unwrap();
    let cpu1 = arch.pe_by_name("cpu1").unwrap();
    let mut b = CpgBuilder::new();
    let c1 = b.condition("C1");
    let c2 = b.condition("C2");
    let root = b.process("root", Time::new(4), cpu0);
    let mid = b.process("mid", Time::new(4), cpu0);
    let a_t = b.process("a_t", Time::new(3), cpu1);
    let a_f = b.process("a_f", Time::new(6), cpu1);
    let b_t = b.process("b_t", Time::new(2), cpu1);
    let b_f = b.process("b_f", Time::new(5), cpu1);
    let sink = b.process("sink", Time::new(2), cpu1);
    b.conditional_edge(root, a_t, c1.is_true(), Time::ZERO);
    b.conditional_edge(root, a_f, c1.is_false(), Time::ZERO);
    b.simple_edge(root, mid, Time::ZERO);
    b.conditional_edge(mid, b_t, c2.is_true(), Time::ZERO);
    b.conditional_edge(mid, b_f, c2.is_false(), Time::ZERO);
    b.simple_edge(a_t, sink, Time::ZERO);
    b.simple_edge(a_f, sink, Time::ZERO);
    b.simple_edge(b_t, sink, Time::ZERO);
    b.simple_edge(b_f, sink, Time::ZERO);
    b.mark_conjunction(sink);
    let cpg = b.build(&arch).unwrap();
    (arch, cpg)
}

fn merge_at(cpg: &Cpg, arch: &Architecture, threads: usize) -> MergeResult {
    generate_schedule_table(
        cpg,
        arch,
        &MergeConfig::new(Time::new(1))
            .with_trace(true)
            .with_threads(threads),
    )
}

/// Panic-based field-wise equality (`MergeResult` has no `PartialEq`; the
/// pieces give usable failure messages).
fn assert_identical(reference: &MergeResult, explored: &MergeResult, context: &str) {
    assert!(
        reference.table() == explored.table(),
        "table diverged ({context})"
    );
    assert_eq!(reference.tracks(), explored.tracks(), "{context}");
    assert!(
        reference.path_schedules() == explored.path_schedules(),
        "path schedules diverged ({context})"
    );
    assert_eq!(reference.delta_m(), explored.delta_m(), "{context}");
    assert_eq!(reference.delta_max(), explored.delta_max(), "{context}");
    assert_eq!(reference.steps(), explored.steps(), "{context}");
    assert_eq!(reference.stats(), explored.stats(), "{context}");
}

/// Explores every interleaving of the merge at `threads` workers, asserting
/// each schedule reproduces the serial result bit-identically, and returns
/// the report.
fn explore_merge(cpg: &Cpg, arch: &Architecture, threads: usize, config: &ExploreConfig) -> Report {
    let reference = merge_at(cpg, arch, 1);
    race::explore(config, || {
        let explored = merge_at(cpg, arch, threads);
        assert_identical(&reference, &explored, &format!("{threads} workers"));
    })
}

#[test]
fn two_worker_fork_interleavings_are_exhausted_and_clean() {
    let _lock = lock();
    let (arch, cpg) = diamond_system();
    let report = explore_merge(&cpg, &arch, 2, &ExploreConfig::exhaustive(200_000));
    println!(
        "diamond @ 2 workers: {} schedules ({} max choice points), exhausted = {}",
        report.schedules, report.max_choice_points, report.exhausted
    );
    assert!(
        report.exhausted,
        "2-worker fork space must be fully enumerated within the cap, ran {}",
        report.schedules
    );
    assert!(
        report.schedules >= 2,
        "a forked walk has more than one interleaving"
    );
    assert!(
        report.clean(),
        "current tree must be race-free: {:?}",
        report.violations
    );
}

#[test]
fn three_worker_fork_interleavings_are_exhausted_and_clean() {
    let _lock = lock();
    let (arch, cpg) = diamond_system();
    let report = explore_merge(&cpg, &arch, 3, &ExploreConfig::exhaustive(200_000));
    println!(
        "diamond @ 3 workers: {} schedules ({} max choice points), exhausted = {}",
        report.schedules, report.max_choice_points, report.exhausted
    );
    assert!(report.exhausted);
    assert!(
        report.clean(),
        "current tree must be race-free: {:?}",
        report.violations
    );
}

#[test]
fn random_walks_on_the_validation_failure_system_are_clean() {
    let _lock = lock();
    let (arch, cpg) = overlapping_rows_system();
    // The nested-fork space of this system is too large to exhaust; seeded
    // random walks sample it at both fork budgets. Every schedule still
    // checks bit-identity against the serial walk.
    for threads in [2usize, 3] {
        let report = explore_merge(
            &cpg,
            &arch,
            threads,
            &ExploreConfig::random(0xE1E5_1998, 24),
        );
        println!(
            "overlapping rows @ {threads} workers: {} random schedules ({} max choice points)",
            report.schedules, report.max_choice_points
        );
        assert_eq!(report.schedules, 24);
        assert!(
            report.clean(),
            "current tree must be race-free at {threads} workers: {:?}",
            report.violations
        );
    }
}

#[test]
fn exploration_is_deterministic() {
    let _lock = lock();
    let (arch, cpg) = diamond_system();
    let first = explore_merge(&cpg, &arch, 2, &ExploreConfig::exhaustive(200_000));
    let second = explore_merge(&cpg, &arch, 2, &ExploreConfig::exhaustive(200_000));
    assert_eq!(first.schedules, second.schedules);
    assert_eq!(first.exhausted, second.exhausted);
    assert_eq!(first.max_choice_points, second.max_choice_points);
}

fn is_stale_commit(violation: &Violation) -> bool {
    matches!(violation, Violation::Protocol { detail, .. } if detail.contains("validate"))
}

#[test]
fn seeded_commit_order_mutation_is_detected_and_replays() {
    let _lock = lock();
    let (arch, cpg) = overlapping_rows_system();
    let saboteur = sabotage::SkipBackValidation::engage();

    // The sabotaged walk commits a genuinely stale back log on this system
    // (its back speculations always fail validation), so the very first
    // schedules already trip the commit hook's protocol check.
    let seed = 0x1998_0223;
    let report = race::explore(&ExploreConfig::random(seed, 8), || {
        // No bit-identity assertion: the whole point is that the
        // mutated protocol corrupts the merge.
        let _ = merge_at(&cpg, &arch, 2);
    });
    assert!(
        !report.clean(),
        "the detector must flag the skipped back validation"
    );
    assert!(
        report.violations.iter().any(is_stale_commit),
        "expected a stale-commit protocol violation, got {:?}",
        report.violations
    );
    let trace = report
        .failing_trace
        .clone()
        .expect("failing schedule recorded");
    let failing_seed = report.failing_seed.expect("failing seed recorded");
    println!(
        "mutation detected: base seed {seed:#x}, failing schedule seed {failing_seed:#x}, \
         choice trace {trace:?}"
    );

    // Reproduce from the recorded choice trace...
    let replayed = race::explore(&ExploreConfig::replay(trace), || {
        let _ = merge_at(&cpg, &arch, 2);
    });
    assert!(
        replayed.violations.iter().any(is_stale_commit),
        "the recorded choice trace must reproduce the finding: {:?}",
        replayed.violations
    );

    // ...and from the printed per-schedule seed alone.
    let reseeded = race::explore(
        &ExploreConfig {
            mode: Mode::Random {
                seed: failing_seed,
                schedules: 1,
            },
            max_schedules: 1,
        },
        || {
            let _ = merge_at(&cpg, &arch, 2);
        },
    );
    assert!(
        reseeded.violations.iter().any(is_stale_commit),
        "the printed seed must reproduce the finding: {:?}",
        reseeded.violations
    );

    // Correct protocol restored: the same schedules come back clean.
    drop(saboteur);
    let clean = race::explore(&ExploreConfig::random(seed, 8), || {
        let _ = merge_at(&cpg, &arch, 2);
    });
    assert!(
        clean.clean(),
        "with validation restored the same walks are clean: {:?}",
        clean.violations
    );
}

// ---------------------------------------------------------------------------
// Banked regression corpus.
// ---------------------------------------------------------------------------

struct CorpusEntry {
    name: String,
    system: String,
    threads: usize,
    choices: Vec<u8>,
}

fn load_corpus() -> Vec<CorpusEntry> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/race_schedules");
    let mut entries = Vec::new();
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .map(|entry| entry.expect("corpus entry readable").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "txt"))
        .collect();
    names.sort();
    for path in names {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let mut system = None;
        let mut threads = None;
        let mut choices = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .unwrap_or_else(|| panic!("malformed corpus line in {}: {line}", path.display()));
            match key.trim() {
                "system" => system = Some(value.trim().to_string()),
                "threads" => threads = Some(value.trim().parse().expect("thread count")),
                "choices" => {
                    choices = Some(
                        value
                            .split_whitespace()
                            .map(|choice| choice.parse().expect("choice index"))
                            .collect(),
                    );
                }
                other => panic!("unknown corpus key {other:?} in {}", path.display()),
            }
        }
        entries.push(CorpusEntry {
            name: path
                .file_stem()
                .and_then(|stem| stem.to_str())
                .unwrap_or("?")
                .to_string(),
            system: system.expect("corpus file names a system"),
            threads: threads.expect("corpus file names a thread count"),
            choices: choices.expect("corpus file records a choice trace"),
        });
    }
    assert!(!entries.is_empty(), "the banked corpus must not be empty");
    entries
}

/// Regenerates the banked corpus: explores the sabotaged walk and prints
/// each failing schedule in the corpus file format. Run with
/// `cargo test --features race-check --test race_explorer -- --ignored
/// --nocapture regenerate_corpus` and paste the output into new files under
/// `tests/corpus/race_schedules/`.
#[test]
#[ignore = "corpus regeneration helper, not a check"]
fn regenerate_corpus() {
    let _lock = lock();
    let configs = [
        ("diamond", 2usize, 0x0001u64),
        ("diamond", 3, 0x0002),
        ("overlapping_rows", 2, 0x0003),
        ("overlapping_rows", 3, 0x0004),
    ];
    for (system, threads, seed) in configs {
        let (arch, cpg) = match system {
            "diamond" => diamond_system(),
            _ => overlapping_rows_system(),
        };
        let saboteur = sabotage::SkipBackValidation::engage();
        let report = race::explore(&ExploreConfig::random(seed, 16), || {
            let _ = merge_at(&cpg, &arch, threads);
        });
        drop(saboteur);
        let Some(trace) = report.failing_trace else {
            println!("# {system} @ {threads}: no failing schedule in 16 walks");
            continue;
        };
        let choices: Vec<String> = trace.iter().map(u8::to_string).collect();
        println!("# --- {system}_{threads}w.txt ---");
        println!("# Schedule exposing the skipped-back-validation mutation");
        println!("# (found by seeded random walk, base seed {seed:#x}).");
        println!("system: {system}");
        println!("threads: {threads}");
        println!("choices: {}", choices.join(" "));
    }
}

#[test]
fn banked_racy_schedules_are_still_detected() {
    let _lock = lock();
    for entry in load_corpus() {
        let (arch, cpg) = match entry.system.as_str() {
            "diamond" => diamond_system(),
            "overlapping_rows" => overlapping_rows_system(),
            other => panic!("corpus entry {} names unknown system {other:?}", entry.name),
        };
        // Each banked schedule historically exposed the skipped-validation
        // mutation; replaying it under the sabotaged walk must keep finding
        // the stale commit.
        let saboteur = sabotage::SkipBackValidation::engage();
        let threads = entry.threads;
        let report = race::explore(&ExploreConfig::replay(entry.choices.clone()), || {
            let _ = merge_at(&cpg, &arch, threads);
        });
        drop(saboteur);
        assert!(
            report.violations.iter().any(is_stale_commit),
            "corpus schedule {} no longer detects the stale commit: {:?}",
            entry.name,
            report.violations
        );

        // And the same schedule on the correct protocol is clean — the
        // corpus pins detector sensitivity, not a real bug in the tree.
        let reference = merge_at(&cpg, &arch, 1);
        let clean = race::explore(&ExploreConfig::replay(entry.choices), || {
            let explored = merge_at(&cpg, &arch, threads);
            assert_identical(&reference, &explored, &entry.name);
        });
        assert!(
            clean.clean(),
            "corpus schedule {} flags the unmutated tree: {:?}",
            entry.name,
            clean.violations
        );
    }
}

// ---------------------------------------------------------------------------
// Condition-partition index: happens-before footprint parity.
// ---------------------------------------------------------------------------

/// The walk's per-row scans are served by the condition-partition index, but
/// their happens-before footprint must not narrow: an index-served probe
/// still depends on the *whole* row (an unordered write anywhere in the row
/// can change which entries the probe visits), so it must record the same
/// row-level read the linear keyed scan recorded.
///
/// Proven by directed exploration: a scanning vthread races an
/// unsynchronized sibling writing a cell of the scanned row, once per scan
/// flavour. Every flavour must be flagged, and all on the same row cell —
/// if an index-served scan under-recorded its reads, its exploration would
/// come back clean.
#[test]
fn index_served_scans_race_with_row_writes_like_the_linear_scan() {
    let _lock = lock();
    let job = Job::Process(ProcessId::from_index(0));
    let c0 = CondId::new(0);
    let build = || {
        let mut table = ScheduleTable::new();
        table.set_on(job, Cube::top(), Time::new(1), None);
        table.set_on(job, Cube::from(c0.is_true()), Time::new(4), None);
        table
    };

    let race_cells = |scan: fn(&ScheduleTable, Job)| -> Vec<race::CellId> {
        let report = race::explore(&ExploreConfig::exhaustive(64), || {
            // Both tables are built by the exploration root, so the
            // construction writes are fork-ordered before both children; the
            // only unordered pair left is the child scan against the child
            // write.
            let table = build();
            let mut writer = build();
            fj::join_with_cost(
                2,
                1,
                1,
                |_| scan(&table, job),
                // Through the trait: the shared-table write recording lives
                // on `TableView::set_on` (the walk's dispatch path), not on
                // the inherent method.
                |_| {
                    TableView::set_on(
                        &mut writer,
                        job,
                        Cube::from(c0.is_false()),
                        Time::new(9),
                        None,
                    );
                },
            );
        });
        let mut cells: Vec<race::CellId> = report
            .violations
            .iter()
            .filter_map(|violation| match violation {
                Violation::Race { cell, .. } => Some(*cell),
                Violation::Protocol { .. } => None,
            })
            .collect();
        cells.sort_unstable_by_key(|cell| (cell.kind, cell.a, cell.b));
        cells.dedup();
        cells
    };

    let linear = race_cells(|table, job| {
        TableView::for_each_keyed_entry_on(table, job, &mut |_, _, _, _| {});
    });
    assert_eq!(
        linear.len(),
        1,
        "the scan-vs-write conflict is exactly the row cell: {linear:?}"
    );
    let compatible = race_cells(|table, job| {
        TableView::for_each_compatible_entry_on(table, job, &Cube::top(), &mut |_, _, _, _| {});
    });
    assert_eq!(
        compatible, linear,
        "the index-served compatibility scan must record the row read the linear scan recorded"
    );
    let at_time = race_cells(|table, job| {
        TableView::for_each_entry_at_on(table, job, Time::new(4), &mut |_, _, _| {});
    });
    assert_eq!(
        at_time, linear,
        "the index-served time-bucket scan must record the row read the linear scan recorded"
    );
}

/// The banked corpus schedules were recorded against the linear-scan walk;
/// replayed over the index-served walk they must stay clean and reproduce
/// the serial result bit-identically — the historical interleavings cannot
/// tell the two scan implementations apart.
#[test]
fn banked_schedules_replay_identically_over_the_indexed_walk() {
    let _lock = lock();
    for entry in load_corpus() {
        let (arch, cpg) = match entry.system.as_str() {
            "diamond" => diamond_system(),
            "overlapping_rows" => overlapping_rows_system(),
            other => panic!("corpus entry {} names unknown system {other:?}", entry.name),
        };
        let reference = merge_at(&cpg, &arch, 1);
        let threads = entry.threads;
        let report = race::explore(&ExploreConfig::replay(entry.choices), || {
            let explored = merge_at(&cpg, &arch, threads);
            assert_identical(&reference, &explored, &entry.name);
        });
        assert!(
            report.clean(),
            "corpus schedule {} flags the indexed walk: {:?}",
            entry.name,
            report.violations
        );
    }
}
