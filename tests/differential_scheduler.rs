//! Differential property tests of the indexed scheduling core against the
//! retained naive reference scheduler (`cpg_path_sched::reference`, compiled
//! via the `test-util` feature).
//!
//! The `TrackContext` rewrite replaced the O(n²) eligible-job rescans and the
//! `HashMap`-keyed scheduler state with dense indexed structures and a
//! binary-heap ready queue. The two implementations must be *observably
//! identical*: for every alternative path of arbitrary generated systems,
//! both `schedule_track` and `reschedule` (under random lock sets, including
//! locks that pin a broadcast to a specific bus) must produce the same
//! `(start, end, resource)` assignment for every job, the same path delay,
//! the same cached condition resolutions and the same slipped-lock reports.
//!
//! On top of the per-call equivalence, the merge-level property test replays
//! every generated schedule table through the reference oracle: each tabled
//! activation time, locked on its recorded resource, must be realizable —
//! any slip surviving in the final table must be exactly what
//! `MergeStats::lock_slips` reported.

use std::collections::HashMap;

use proptest::prelude::*;

use cpg_path_sched::reference;
use cps::model::enumerate_tracks;
use cps::prelude::*;

/// Generator configurations covering conditional structure, heterogeneous
/// architectures (multiple buses matter: broadcast placement is the
/// historically buggy path) and both execution-time distributions.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        12usize..48,
        2usize..10,
        1usize..5,
        1usize..4,
        any::<u64>(),
        prop::bool::ANY,
    )
        .prop_map(|(nodes, paths, processors, buses, seed, exponential)| {
            let distribution = if exponential {
                cps::gen::ExecTimeDistribution::Exponential { mean: 7.0 }
            } else {
                cps::gen::ExecTimeDistribution::Uniform { min: 1, max: 15 }
            };
            GeneratorConfig::new(nodes.max(3 * paths), paths)
                .with_processors(processors)
                .with_buses(buses)
                .with_distribution(distribution)
                .with_seed(seed)
        })
}

/// Asserts that two schedules of the same track are observably identical.
fn assert_identical(fast: &PathSchedule, slow: &PathSchedule) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.label(), slow.label());
    prop_assert_eq!(fast.delay(), slow.delay());
    prop_assert_eq!(fast.len(), slow.len());
    for sj in fast.jobs() {
        let other = slow.entry(sj.job());
        prop_assert!(other.is_some(), "{} missing from reference", sj.job());
        let other = other.unwrap();
        prop_assert!(
            sj.start() == other.start() && sj.end() == other.end() && sj.pe() == other.pe(),
            "divergence on {}: indexed {:?}..{:?} on {:?}, reference {:?}..{:?} on {:?}",
            sj.job(),
            sj.start(),
            sj.end(),
            sj.pe(),
            other.start(),
            other.end(),
            other.pe()
        );
    }
    prop_assert_eq!(fast.resolutions(), slow.resolutions());
    prop_assert_eq!(fast.slipped_locks(), slow.slipped_locks());
    Ok(())
}

proptest! {
    // Pinned case count and shrink budget: CI runs must be deterministic and
    // fast regardless of PROPTEST_CASES / PROPTEST_MAX_SHRINK_ITERS in the
    // environment.
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn indexed_core_matches_reference_on_schedule_track(config in config_strategy()) {
        let system = generate(&config);
        let cpg = system.cpg();
        let arch = system.arch();
        let tau0 = system.broadcast_time();
        let scheduler = ListScheduler::new(cpg, arch, tau0);
        for track in enumerate_tracks(cpg).iter() {
            let fast = scheduler.schedule_track(track);
            let slow = reference::schedule_track(cpg, arch, tau0, track);
            assert_identical(&fast, &slow)?;
        }
    }

    #[test]
    fn indexed_core_matches_reference_on_reschedule_with_random_locks(
        config in config_strategy(),
        lock_mask in any::<u64>(),
        offset in 0u64..6,
    ) {
        let system = generate(&config);
        let cpg = system.cpg();
        let arch = system.arch();
        let tau0 = system.broadcast_time();
        let scheduler = ListScheduler::new(cpg, arch, tau0);
        for track in enumerate_tracks(cpg).iter() {
            let ctx = scheduler.context(track);
            let original = ctx.schedule();

            // Random lock set: a pseudo-random subset of the jobs, locked at
            // their original start shifted by a small offset — this exercises
            // honoured locks, slipped locks and locked broadcasts alike.
            // Every other locked broadcast is additionally *pinned* to a
            // rotating broadcast bus, the provenance a lock inherited from
            // the schedule table carries.
            let buses: Vec<PeId> = arch.broadcast_buses().collect();
            let mut dense_locks = LockSet::for_graph(cpg);
            let mut map_locks: HashMap<Job, (Time, Option<PeId>)> = HashMap::new();
            for (i, sj) in original.jobs().iter().enumerate() {
                if lock_mask & (1 << (i % 64)) == 0 {
                    continue;
                }
                let time = sj.start() + Time::new(offset * (i as u64 % 3));
                let pinned = match sj.job() {
                    Job::Broadcast(_) if i % 2 == 0 && !buses.is_empty() => {
                        Some(buses[i % buses.len()])
                    }
                    _ => None,
                };
                dense_locks.insert_pinned(sj.job(), time, pinned);
                map_locks.insert(sj.job(), (time, pinned));
            }
            // Locks for jobs of *other* paths must be ignored identically by
            // both implementations.
            for pid in cpg.schedulable_processes().filter(|&p| !track.contains(p)).take(3) {
                let job = Job::Process(pid);
                dense_locks.insert(job, Time::new(offset));
                map_locks.insert(job, (Time::new(offset), None));
            }

            let fast = ctx.reschedule(&original, &dense_locks);
            let slow = reference::reschedule(cpg, arch, tau0, track, &original, &map_locks);
            assert_identical(&fast, &slow)?;

            // Honoured pinned broadcast locks occupy exactly the pinned bus.
            for (job, time, pinned) in dense_locks.iter_pinned() {
                let (Some(bus), Some(entry)) = (pinned, fast.entry(job)) else {
                    continue;
                };
                if entry.start() == time {
                    prop_assert!(
                        entry.pe() == Some(bus),
                        "pinned broadcast {} migrated off its bus to {:?}",
                        job,
                        entry.pe()
                    );
                }
            }

            // The dense lock set agrees with the map it mirrors.
            prop_assert_eq!(dense_locks.len(), map_locks.len());
            for (job, time, pinned) in dense_locks.iter_pinned() {
                prop_assert_eq!(map_locks.get(&job).copied(), Some((time, pinned)));
                prop_assert_eq!(dense_locks.pinned_pe(job), pinned);
            }
        }
    }

    /// The post-merge invariant of the slip-correcting pipeline: replaying
    /// the final schedule table through the naive reference oracle — every
    /// job locked at its applicable tabled time, pinned to the resource
    /// recorded when the time was tabled — must reproduce exactly the
    /// surviving-slip count the merge reported, and every honoured broadcast
    /// lock must occupy its recorded bus. A slip here that the merge did not
    /// count would be an activation time the dispatcher silently cannot
    /// realize.
    #[test]
    fn merged_tables_are_realizable_or_surviving_slips_are_counted(
        config in config_strategy(),
    ) {
        let system = generate(&config);
        let cpg = system.cpg();
        let arch = system.arch();
        let tau0 = system.broadcast_time();
        let result = generate_schedule_table(cpg, arch, &MergeConfig::new(tau0));
        let table = result.table();

        let mut replayed_slips = 0usize;
        for track in result.tracks().iter() {
            let assignment = Assignment::from_cube(&track.label());
            let mut locks: HashMap<Job, (Time, Option<PeId>)> = HashMap::new();
            let jobs = track
                .processes()
                .iter()
                .filter(|&&p| !cpg.process(p).kind().is_dummy())
                .map(|&p| Job::Process(p))
                .chain(track.determined_conditions().map(Job::Broadcast));
            for job in jobs {
                if let Some(time) = table.activation_time(job, &assignment) {
                    let resource = table.activation_resource(job, &assignment);
                    locks.insert(job, (time, resource));
                }
            }
            let original = reference::schedule_track(cpg, arch, tau0, track);
            let replay = reference::reschedule(cpg, arch, tau0, track, &original, &locks);
            replayed_slips += replay.slipped_locks().len();

            // Honoured broadcast locks sit on the bus recorded at tabling
            // time — the tabled (time, bus) pair is what the run-time bus
            // scheduler executes.
            for (&job, &(time, resource)) in &locks {
                let (Job::Broadcast(_), Some(bus)) = (job, resource) else {
                    continue;
                };
                let Some(entry) = replay.entry(job) else { continue };
                if entry.start() == time {
                    prop_assert!(
                        entry.pe() == Some(bus),
                        "broadcast {} not on its recorded bus on {}",
                        job,
                        track.label()
                    );
                }
            }
        }
        prop_assert!(
            replayed_slips == result.stats().lock_slips,
            "{} unrealizable activation times but {} counted (repairs: {})",
            replayed_slips,
            result.stats().lock_slips,
            result.stats().slip_repairs
        );
    }
}
