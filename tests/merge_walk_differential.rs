//! Differential test of the undo-log decision-tree walk against the
//! clone-per-node recursive walk it replaced.
//!
//! The undo-log walk (`Merger::walk_undo_log`) shares one `Assignment` and
//! one journalled `LockSet` per back-step branch along the tree path and
//! rebuilds pooled `PathSchedule`s in place, instead of cloning all three at
//! every node. None of that is allowed to change a single decision: the
//! original recursion is kept behind the `test-util` feature
//! (`generate_schedule_table_cloning`) and the produced `MergeResult` —
//! table cells with recorded resources, per-path schedules, slips, decision
//! steps, counters and delays — must be bit-identical over random systems,
//! for every thread count of the surrounding parallel phases, and on
//! systems that force the slip-repair loop.

use proptest::prelude::*;

use cps::merge::{generate_schedule_table_cloning, MergeStats};
use cps::prelude::*;

/// Generator configurations spanning conditional structure and architecture
/// shape; kept close to `tests/parallel_merge.rs` so the suites explore the
/// same system space, with a bias towards deep condition nests (many paths
/// over few processes) where the walk dominates.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        12usize..40,
        2usize..10,
        1usize..5,
        1usize..4,
        any::<u64>(),
        prop::bool::ANY,
    )
        .prop_map(|(nodes, paths, processors, buses, seed, exponential)| {
            let distribution = if exponential {
                cps::gen::ExecTimeDistribution::Exponential { mean: 7.0 }
            } else {
                cps::gen::ExecTimeDistribution::Uniform { min: 1, max: 15 }
            };
            GeneratorConfig::new(nodes.max(3 * paths), paths)
                .with_processors(processors)
                .with_buses(buses)
                .with_distribution(distribution)
                .with_seed(seed)
        })
}

/// Field-wise equality of two merge results (`MergeResult` deliberately does
/// not implement `PartialEq`; comparing the pieces gives usable failure
/// messages).
fn assert_results_identical(
    oracle: &MergeResult,
    undo: &MergeResult,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(oracle.table() == undo.table(), "table diverged ({context})");
    prop_assert_eq!(oracle.tracks(), undo.tracks());
    prop_assert!(
        oracle.path_schedules() == undo.path_schedules(),
        "path schedules diverged ({context})"
    );
    prop_assert_eq!(oracle.delta_m(), undo.delta_m());
    prop_assert_eq!(oracle.delta_max(), undo.delta_max());
    prop_assert_eq!(oracle.steps(), undo.steps());
    let (oracle_stats, undo_stats): (MergeStats, MergeStats) = (oracle.stats(), undo.stats());
    prop_assert!(
        oracle_stats == undo_stats,
        "stats diverged ({context}): {oracle_stats:?} vs {undo_stats:?}"
    );
    Ok(())
}

proptest! {
    // Pinned case count and shrink budget: CI runs must be deterministic and
    // fast regardless of PROPTEST_CASES / PROPTEST_MAX_SHRINK_ITERS in the
    // environment.
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn undo_log_walk_matches_the_cloning_oracle(config in config_strategy()) {
        let system = generate(&config);
        let cpg = system.cpg();
        let arch = system.arch();
        let base = MergeConfig::new(system.broadcast_time());

        // The oracle runs fully serial; the walk itself is serial in both
        // implementations, so the clone-based result is the reference for
        // every thread count of the parallel phases around the walk.
        let oracle = generate_schedule_table_cloning(cpg, arch, &base.with_threads(1));
        oracle.table().verify(cpg, oracle.tracks()).expect("oracle table is correct");

        for threads in [1usize, 2, 4] {
            let undo = generate_schedule_table(cpg, arch, &base.with_threads(threads));
            assert_results_identical(&oracle, &undo, &format!("{threads} threads"))?;
        }
    }

    #[test]
    fn undo_log_walk_matches_the_oracle_under_every_selection_policy(
        config in config_strategy(),
    ) {
        // The back-step track re-selection is where the undo-log walk reads
        // the shared `Assignment` after rolling it back, so exercise every
        // policy that consumes it.
        let system = generate(&config);
        let cpg = system.cpg();
        let arch = system.arch();
        for policy in [
            SelectionPolicy::ShortestDelayFirst,
            SelectionPolicy::EnumerationOrder,
        ] {
            let base = MergeConfig::new(system.broadcast_time()).with_selection(policy);
            let oracle = generate_schedule_table_cloning(cpg, arch, &base.with_threads(1));
            let undo = generate_schedule_table(cpg, arch, &base.with_threads(2));
            assert_results_identical(&oracle, &undo, &format!("{policy:?}"))?;
        }
    }
}

/// Crafted system where an inherited lock *must* slip (the same shape as the
/// regression test in `cpg-merge`): `victim` runs early on the longest path,
/// but on the opposite branch it additionally consumes the output of `slow`,
/// so the tabled early time is unreachable there and the merge has to drive
/// the Theorem-2 slip-repair loop — the walk path where the undo-log
/// machinery (journalled locks, pooled schedules, reused repair buffers) is
/// under the most pressure.
fn slipping_system() -> (Architecture, Cpg) {
    let arch = Architecture::builder()
        .processor("cpu0")
        .processor("cpu1")
        .bus("bus")
        .build()
        .unwrap();
    let cpu0 = arch.pe_by_name("cpu0").unwrap();
    let cpu1 = arch.pe_by_name("cpu1").unwrap();
    let mut b = CpgBuilder::new();
    let c = b.condition("C");
    let root = b.process("root", Time::new(10), cpu0);
    let quick = b.process("quick", Time::new(1), cpu1);
    let victim = b.process("victim", Time::new(2), cpu1);
    let slow = b.process("slow", Time::new(3), cpu1);
    let tail = b.process("tail", Time::new(20), cpu0);
    b.simple_edge(quick, victim, Time::ZERO);
    b.conditional_edge(root, slow, c.is_false(), Time::ZERO);
    b.conditional_edge(root, tail, c.is_true(), Time::ZERO);
    b.simple_edge(slow, victim, Time::ZERO);
    b.mark_conjunction(victim);
    let cpg = b.build(&arch).unwrap();
    (arch, cpg)
}

#[test]
fn undo_log_walk_matches_the_oracle_on_a_slip_forcing_system() {
    let (arch, cpg) = slipping_system();
    let config = MergeConfig::new(Time::new(2));
    let oracle = generate_schedule_table_cloning(&cpg, &arch, &config.with_threads(1));
    assert!(
        oracle.stats().slip_repairs > 0,
        "the crafted lock never slipped: {:?}",
        oracle.stats()
    );
    for threads in [1usize, 2, 4] {
        let undo = generate_schedule_table(&cpg, &arch, &config.with_threads(threads));
        assert_eq!(
            oracle.table(),
            undo.table(),
            "table diverged at {threads} threads"
        );
        assert_eq!(oracle.path_schedules(), undo.path_schedules());
        assert_eq!(oracle.steps(), undo.steps());
        assert_eq!(oracle.stats(), undo.stats());
        assert_eq!(oracle.delta_max(), undo.delta_max());
    }
}
