//! Differential test of the production decision-tree walks against the
//! clone-per-node recursive walk they replaced.
//!
//! The serial undo-log walk shares one `Assignment` and one journalled
//! `LockSet` per back-step branch along the tree path and rebuilds pooled
//! `PathSchedule`s in place, instead of cloning all three at every node; the
//! speculative walk (two or more threads) additionally runs sibling subtrees
//! concurrently over transactional overlays of the table (`TableTxn`),
//! committing their write logs in tree order and discarding-and-re-running
//! any back speculation whose read rows the forward subtree changed. None of
//! that is allowed to change a single decision: the original recursion is
//! kept behind the `test-util` feature (`generate_schedule_table_cloning`)
//! and the produced `MergeResult` — table cells with recorded resources,
//! per-path schedules, slips, decision steps, counters and delays — must be
//! bit-identical over random systems, at thread counts 1/2/4/8 and for every
//! selection policy, and on crafted systems that force the slip-repair loop
//! and the txn-validation-failure path.

use proptest::prelude::*;

use cps::merge::{generate_schedule_table_cloning, MergeStats};
use cps::prelude::*;

/// Generator configurations spanning conditional structure and architecture
/// shape; kept close to `tests/parallel_merge.rs` so the suites explore the
/// same system space, with a bias towards deep condition nests (many paths
/// over few processes) where the walk dominates.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        12usize..40,
        2usize..10,
        1usize..5,
        1usize..4,
        any::<u64>(),
        prop::bool::ANY,
    )
        .prop_map(|(nodes, paths, processors, buses, seed, exponential)| {
            let distribution = if exponential {
                cps::gen::ExecTimeDistribution::Exponential { mean: 7.0 }
            } else {
                cps::gen::ExecTimeDistribution::Uniform { min: 1, max: 15 }
            };
            GeneratorConfig::new(nodes.max(3 * paths), paths)
                .with_processors(processors)
                .with_buses(buses)
                .with_distribution(distribution)
                .with_seed(seed)
        })
}

/// Field-wise equality of two merge results (`MergeResult` deliberately does
/// not implement `PartialEq`; comparing the pieces gives usable failure
/// messages).
fn assert_results_identical(
    oracle: &MergeResult,
    undo: &MergeResult,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(oracle.table() == undo.table(), "table diverged ({context})");
    prop_assert_eq!(oracle.tracks(), undo.tracks());
    prop_assert!(
        oracle.path_schedules() == undo.path_schedules(),
        "path schedules diverged ({context})"
    );
    prop_assert_eq!(oracle.delta_m(), undo.delta_m());
    prop_assert_eq!(oracle.delta_max(), undo.delta_max());
    prop_assert_eq!(oracle.steps(), undo.steps());
    let (oracle_stats, undo_stats): (MergeStats, MergeStats) = (oracle.stats(), undo.stats());
    prop_assert!(
        oracle_stats == undo_stats,
        "stats diverged ({context}): {oracle_stats:?} vs {undo_stats:?}"
    );
    Ok(())
}

proptest! {
    // Pinned case count and shrink budget: CI runs must be deterministic and
    // fast regardless of PROPTEST_CASES / PROPTEST_MAX_SHRINK_ITERS in the
    // environment.
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn production_walks_match_the_cloning_oracle(config in config_strategy()) {
        let system = generate(&config);
        let cpg = system.cpg();
        let arch = system.arch();
        // Tracing on: the step-by-step visit order is part of the contract
        // being compared (it is off by default to keep the walk
        // allocation-free).
        let base = MergeConfig::new(system.broadcast_time()).with_trace(true);

        // The oracle runs fully serial and clone-per-node; one thread runs
        // the serial undo-log walk; two or more run the speculative
        // transactional walk at increasing fork depth. All must agree.
        let oracle = generate_schedule_table_cloning(cpg, arch, &base.with_threads(1));
        oracle.table().verify(cpg, oracle.tracks()).expect("oracle table is correct");

        for threads in [1usize, 2, 4, 8] {
            let walk = generate_schedule_table(cpg, arch, &base.with_threads(threads));
            assert_results_identical(&oracle, &walk, &format!("{threads} threads"))?;
        }
    }

    #[test]
    fn production_walks_match_the_oracle_under_every_selection_policy(
        config in config_strategy(),
    ) {
        // The back-step track re-selection is where the walks read the
        // shared `Assignment` after rolling it back (and where the
        // speculative walk probes the branch *before* forking), so exercise
        // every policy that consumes it.
        let system = generate(&config);
        let cpg = system.cpg();
        let arch = system.arch();
        for policy in [
            SelectionPolicy::ShortestDelayFirst,
            SelectionPolicy::EnumerationOrder,
        ] {
            let base = MergeConfig::new(system.broadcast_time())
                .with_selection(policy)
                .with_trace(true);
            let oracle = generate_schedule_table_cloning(cpg, arch, &base.with_threads(1));
            for threads in [1usize, 2, 4, 8] {
                let walk = generate_schedule_table(cpg, arch, &base.with_threads(threads));
                assert_results_identical(&oracle, &walk, &format!("{policy:?}, {threads} threads"))?;
            }
        }
    }
}

/// Crafted system where an inherited lock *must* slip (the same shape as the
/// regression test in `cpg-merge`): `victim` runs early on the longest path,
/// but on the opposite branch it additionally consumes the output of `slow`,
/// so the tabled early time is unreachable there and the merge has to drive
/// the Theorem-2 slip-repair loop — the walk path where the undo-log
/// machinery (journalled locks, pooled schedules, reused repair buffers) is
/// under the most pressure.
fn slipping_system() -> (Architecture, Cpg) {
    let arch = Architecture::builder()
        .processor("cpu0")
        .processor("cpu1")
        .bus("bus")
        .build()
        .unwrap();
    let cpu0 = arch.pe_by_name("cpu0").unwrap();
    let cpu1 = arch.pe_by_name("cpu1").unwrap();
    let mut b = CpgBuilder::new();
    let c = b.condition("C");
    let root = b.process("root", Time::new(10), cpu0);
    let quick = b.process("quick", Time::new(1), cpu1);
    let victim = b.process("victim", Time::new(2), cpu1);
    let slow = b.process("slow", Time::new(3), cpu1);
    let tail = b.process("tail", Time::new(20), cpu0);
    b.simple_edge(quick, victim, Time::ZERO);
    b.conditional_edge(root, slow, c.is_false(), Time::ZERO);
    b.conditional_edge(root, tail, c.is_true(), Time::ZERO);
    b.simple_edge(slow, victim, Time::ZERO);
    b.mark_conjunction(victim);
    let cpg = b.build(&arch).unwrap();
    (arch, cpg)
}

#[test]
fn production_walks_match_the_oracle_on_a_slip_forcing_system() {
    let (arch, cpg) = slipping_system();
    let config = MergeConfig::new(Time::new(2)).with_trace(true);
    let oracle = generate_schedule_table_cloning(&cpg, &arch, &config.with_threads(1));
    assert!(
        oracle.stats().slip_repairs > 0,
        "the crafted lock never slipped: {:?}",
        oracle.stats()
    );
    for threads in [1usize, 2, 4, 8] {
        let walk = generate_schedule_table(&cpg, &arch, &config.with_threads(threads));
        assert_eq!(
            oracle.table(),
            walk.table(),
            "table diverged at {threads} threads"
        );
        assert_eq!(oracle.path_schedules(), walk.path_schedules());
        assert_eq!(oracle.steps(), walk.steps());
        assert_eq!(oracle.stats(), walk.stats());
        assert_eq!(oracle.delta_max(), walk.delta_max());
    }
}

/// Crafted system whose sibling subtrees deterministically write *overlapping
/// rows*, forcing the speculative walk's validation-failure path: two nested
/// conditions are computed on `cpu0` while a conjunction `sink` (executed on
/// every path) and the condition broadcasts land in the same table rows on
/// both sides of each fork. At any forked node the forward subtree places the
/// resolved condition's broadcast and the `sink` activation — rows the back
/// speculation must read when it inherits ancestor locks — so the back txn's
/// read-set validation fails against the committed forward log and the branch
/// re-runs against the real table. Bit-identity across thread counts proves
/// the discard-and-re-run path reproduces the serial walk exactly.
fn overlapping_rows_system() -> (Architecture, Cpg) {
    let arch = Architecture::builder()
        .processor("cpu0")
        .processor("cpu1")
        .bus("bus")
        .build()
        .unwrap();
    let cpu0 = arch.pe_by_name("cpu0").unwrap();
    let cpu1 = arch.pe_by_name("cpu1").unwrap();
    let mut b = CpgBuilder::new();
    let c1 = b.condition("C1");
    let c2 = b.condition("C2");
    let root = b.process("root", Time::new(4), cpu0);
    let mid = b.process("mid", Time::new(4), cpu0);
    // Branch bodies with distinct lengths so every path schedules `sink` at
    // a different start — the placements collide in compatible columns and
    // drive the Theorem-2 conflict repair inside the speculated subtrees too.
    let a_t = b.process("a_t", Time::new(3), cpu1);
    let a_f = b.process("a_f", Time::new(6), cpu1);
    let b_t = b.process("b_t", Time::new(2), cpu1);
    let b_f = b.process("b_f", Time::new(5), cpu1);
    let sink = b.process("sink", Time::new(2), cpu1);
    b.conditional_edge(root, a_t, c1.is_true(), Time::ZERO);
    b.conditional_edge(root, a_f, c1.is_false(), Time::ZERO);
    b.simple_edge(root, mid, Time::ZERO);
    b.conditional_edge(mid, b_t, c2.is_true(), Time::ZERO);
    b.conditional_edge(mid, b_f, c2.is_false(), Time::ZERO);
    b.simple_edge(a_t, sink, Time::ZERO);
    b.simple_edge(a_f, sink, Time::ZERO);
    b.simple_edge(b_t, sink, Time::ZERO);
    b.simple_edge(b_f, sink, Time::ZERO);
    b.mark_conjunction(sink);
    let cpg = b.build(&arch).unwrap();
    (arch, cpg)
}

#[test]
fn production_walks_match_the_oracle_when_sibling_subtrees_overlap_rows() {
    let (arch, cpg) = overlapping_rows_system();
    for policy in [
        SelectionPolicy::LongestDelayFirst,
        SelectionPolicy::ShortestDelayFirst,
        SelectionPolicy::EnumerationOrder,
    ] {
        let config = MergeConfig::new(Time::new(1))
            .with_selection(policy)
            .with_trace(true);
        let oracle = generate_schedule_table_cloning(&cpg, &arch, &config.with_threads(1));
        oracle
            .table()
            .verify(&cpg, oracle.tracks())
            .expect("oracle table is correct");
        // Four paths: both conditions fork, so a two-thread budget already
        // speculates at the root node and the sink/broadcast rows overlap.
        assert!(oracle.tracks().len() >= 4, "both conditions must fork");
        for threads in [1usize, 2, 4, 8] {
            let walk = generate_schedule_table(&cpg, &arch, &config.with_threads(threads));
            assert_eq!(
                oracle.table(),
                walk.table(),
                "table diverged at {threads} threads ({policy:?})"
            );
            assert_eq!(oracle.path_schedules(), walk.path_schedules());
            assert_eq!(oracle.steps(), walk.steps());
            assert_eq!(oracle.stats(), walk.stats());
            assert_eq!(oracle.delta_max(), walk.delta_max());
        }
    }
}
