//! Determinism contract of the fork-join merge: for any thread count, the
//! table-generation algorithm produces a `MergeResult` that is *identical* —
//! table cells and recorded resources, per-path schedules, slips, decision
//! steps, counters and delays — to the serial run.
//!
//! The embarrassingly parallel phases (per-track contexts, initial path
//! schedules, the final realizability sweep) reduce by track index, and the
//! decision-tree walk runs sibling subtrees speculatively over transactional
//! table overlays whose write logs commit in tree order, so any divergence
//! here flags a scheduling decision that leaked through worker-local state
//! (e.g. a scratch arena not fully reset between the tracks a worker draws,
//! or a speculated subtree that survived validation it should have failed).

use proptest::prelude::*;

use cps::merge::MergeStats;
use cps::prelude::*;

/// Generator configurations spanning conditional structure and architecture
/// shape; kept close to `tests/differential_scheduler.rs` so the two suites
/// explore the same system space.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        12usize..40,
        2usize..9,
        1usize..5,
        1usize..4,
        any::<u64>(),
        prop::bool::ANY,
    )
        .prop_map(|(nodes, paths, processors, buses, seed, exponential)| {
            let distribution = if exponential {
                cps::gen::ExecTimeDistribution::Exponential { mean: 7.0 }
            } else {
                cps::gen::ExecTimeDistribution::Uniform { min: 1, max: 15 }
            };
            GeneratorConfig::new(nodes.max(3 * paths), paths)
                .with_processors(processors)
                .with_buses(buses)
                .with_distribution(distribution)
                .with_seed(seed)
        })
}

/// Field-wise equality of two merge results (`MergeResult` deliberately does
/// not implement `PartialEq`; comparing the pieces gives usable failure
/// messages).
fn assert_results_identical(
    serial: &MergeResult,
    parallel: &MergeResult,
    threads: usize,
) -> Result<(), TestCaseError> {
    prop_assert!(
        serial.table() == parallel.table(),
        "table diverged at {threads} threads"
    );
    prop_assert_eq!(serial.tracks(), parallel.tracks());
    prop_assert!(
        serial.path_schedules() == parallel.path_schedules(),
        "path schedules diverged at {threads} threads"
    );
    prop_assert_eq!(serial.delta_m(), parallel.delta_m());
    prop_assert_eq!(serial.delta_max(), parallel.delta_max());
    prop_assert_eq!(serial.steps(), parallel.steps());
    let (serial_stats, parallel_stats): (MergeStats, MergeStats) =
        (serial.stats(), parallel.stats());
    prop_assert!(
        serial_stats == parallel_stats,
        "stats diverged at {threads} threads: {serial_stats:?} vs {parallel_stats:?}"
    );
    Ok(())
}

proptest! {
    // Pinned case count and shrink budget: CI runs must be deterministic and
    // fast regardless of PROPTEST_CASES / PROPTEST_MAX_SHRINK_ITERS in the
    // environment.
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn merge_is_identical_across_thread_counts(config in config_strategy()) {
        let system = generate(&config);
        let cpg = system.cpg();
        let arch = system.arch();
        // Tracing on so the recorded decision steps are compared too.
        let base = MergeConfig::new(system.broadcast_time()).with_trace(true);

        let serial = generate_schedule_table(cpg, arch, &base.with_threads(1));
        serial.table().verify(cpg, serial.tracks()).expect("serial table is correct");

        for threads in [2usize, 4, 8] {
            let parallel = generate_schedule_table(cpg, arch, &base.with_threads(threads));
            assert_results_identical(&serial, &parallel, threads)?;
        }
    }

    #[test]
    fn selection_policies_stay_deterministic_under_threads(config in config_strategy()) {
        // The reduction must be order-stable for every selection policy, not
        // just the paper's default (ties in `select_track` are broken by
        // track index, which a nondeterministic reduction would scramble).
        let system = generate(&config);
        let cpg = system.cpg();
        let arch = system.arch();
        for policy in [
            SelectionPolicy::ShortestDelayFirst,
            SelectionPolicy::EnumerationOrder,
        ] {
            let base = MergeConfig::new(system.broadcast_time())
                .with_selection(policy)
                .with_trace(true);
            let serial = generate_schedule_table(cpg, arch, &base.with_threads(1));
            let parallel = generate_schedule_table(cpg, arch, &base.with_threads(4));
            assert_results_identical(&serial, &parallel, 4)?;
        }
    }
}
