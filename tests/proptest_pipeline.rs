//! Property-based tests of the complete scheduling pipeline: for arbitrary
//! generator configurations within the experiment space, the generated
//! schedule table must satisfy the paper's requirements and execute cleanly.

use proptest::prelude::*;

use cps::model::enumerate_tracks;
use cps::prelude::*;

/// Strategy over generator configurations kept small enough for fast
/// shrinking while still covering conditional structure, heterogeneous
/// architectures and both execution-time distributions.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        12usize..40,
        2usize..8,
        1usize..5,
        1usize..4,
        any::<u64>(),
        prop::bool::ANY,
    )
        .prop_map(|(nodes, paths, processors, buses, seed, exponential)| {
            let distribution = if exponential {
                cps::gen::ExecTimeDistribution::Exponential { mean: 7.0 }
            } else {
                cps::gen::ExecTimeDistribution::Uniform { min: 1, max: 15 }
            };
            GeneratorConfig::new(nodes.max(3 * paths), paths)
                .with_processors(processors)
                .with_buses(buses)
                .with_distribution(distribution)
                .with_seed(seed)
        })
}

proptest! {
    // Pinned case count and shrink budget: CI runs must be deterministic and
    // fast regardless of PROPTEST_CASES / PROPTEST_MAX_SHRINK_ITERS in the
    // environment.
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn generated_tables_are_correct_for_arbitrary_systems(config in config_strategy()) {
        let system = generate(&config);
        let tracks = enumerate_tracks(system.cpg());
        prop_assert_eq!(tracks.len(), config.target_paths());

        let result = generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(system.broadcast_time()),
        );
        // Requirements 1-3.
        prop_assert!(result.table().verify(system.cpg(), result.tracks()).is_ok());
        prop_assert_eq!(result.stats().unrepaired_conflicts, 0);

        // Requirement 4 and feasibility, via simulation of every scenario.
        let simulator = Simulator::new(
            system.cpg(),
            system.arch(),
            result.table(),
            system.broadcast_time(),
        );
        let reports = simulator.run_all(result.tracks());
        for report in &reports {
            prop_assert!(report.is_ok(), "violations: {:?}", report.violations());
        }
        // The analytical worst case equals the simulated worst case.
        let observed = reports.iter().map(SimulationReport::delay).max().unwrap();
        prop_assert_eq!(observed, result.delta_max());
    }

    #[test]
    fn per_path_schedules_respect_resources_and_dependencies(config in config_strategy()) {
        let system = generate(&config);
        let tracks = enumerate_tracks(system.cpg());
        let scheduler = ListScheduler::new(
            system.cpg(),
            system.arch(),
            system.broadcast_time(),
        );
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            prop_assert!(schedule.verify(system.cpg(), system.arch()).is_ok());
            prop_assert_eq!(schedule.label(), track.label());
            // Every process of the path and every determined condition is
            // scheduled.
            for &p in track.processes() {
                prop_assert!(schedule.contains(Job::Process(p)));
            }
        }
    }
}
