//! Replays the banked adversarial corpus (`tests/corpus/adversarial/`)
//! through the full differential-oracle battery, and proves every oracle
//! non-vacuous by re-running the corpus under each sabotage mutant of
//! `cpg_merge::sabotage`.
//!
//! Each corpus entry is a fuzzer-found workload (generator configuration
//! plus mutation ops), ddmin-shrunk while preserving its behavior
//! signature. The entries replay *green*: they are regression inputs that
//! once drove the merger into a distinct behavior cell (deep walks, repair
//! storms, degraded outcomes, typed rejections), not stored failures —
//! a healthy tree passes every oracle on all of them. The sabotage tests
//! then flip one protocol switch at a time and assert the battery still
//! notices, so a green corpus run cannot be a vacuous oracle.
//!
//! The CI matrix re-runs this suite under `CPG_MERGE_THREADS={1,4}`; the
//! oracles pin their thread counts explicitly, and
//! [`default_config_matches_the_pinned_baseline`] checks the env-driven
//! default against the pinned single-threaded merge.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use cpg_fuzz::corpus::{encode_entry, parse_entry};
use cpg_fuzz::oracle::divergence;
use cpg_fuzz::{run_oracles, shrink_preserving_signature, FuzzConfig, OracleFailure, OracleKind};
use cpg_gen::Workload;
use cpg_merge::{generate_schedule_table, sabotage, MergeConfig};

/// Serializes the sabotage tests: the switches are process-global state, and
/// an engaged saboteur would corrupt a concurrently running replay.
static SABOTAGE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SABOTAGE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/adversarial")
}

fn load_corpus() -> Vec<(PathBuf, Workload)> {
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|entry| entry.expect("corpus entry readable").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "txt"))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "the adversarial corpus must not be empty"
    );
    paths
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).expect("corpus file readable");
            let workload =
                parse_entry(&text).unwrap_or_else(|error| panic!("{}: {error}", path.display()));
            (path, workload)
        })
        .collect()
}

/// Runs the corpus under an engaged saboteur, returning every (entry name,
/// failure) pair the battery reports. The default panic hook is silenced
/// while the saboteur is live so intentional panics don't spam the test log.
fn run_sabotaged(engage: impl Fn() -> Box<dyn std::any::Any>) -> Vec<(String, OracleFailure)> {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut caught = Vec::new();
    for (path, workload) in load_corpus() {
        let Ok(system) = workload.materialize() else {
            continue;
        };
        let saboteur = engage();
        let outcome = run_oracles(&workload, &system);
        drop(saboteur);
        if let Err(failure) = outcome {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            caught.push((name, failure));
        }
    }
    std::panic::set_hook(hook);
    caught
}

fn assert_caught_by(caught: &[(String, OracleFailure)], oracle: OracleKind, mutant: &str) {
    assert!(
        caught.iter().any(|(_, failure)| failure.oracle == oracle),
        "no corpus entry caught the {mutant} mutant via the {oracle} oracle: {:?}",
        caught
            .iter()
            .map(|(name, failure)| format!("{name}: {}", failure.oracle))
            .collect::<Vec<_>>()
    );
    let (name, failure) = caught
        .iter()
        .find(|(_, failure)| failure.oracle == oracle)
        .unwrap();
    println!("{mutant} caught by {oracle} on {name}: {failure}");
}

#[test]
fn banked_corpus_replays_green_with_distinct_behaviors() {
    let corpus = load_corpus();
    let mut signatures = std::collections::HashSet::new();
    for (path, workload) in &corpus {
        let system = workload
            .materialize()
            .unwrap_or_else(|error| panic!("{}: does not materialize: {error}", path.display()));
        let vector = run_oracles(workload, &system)
            .unwrap_or_else(|failure| panic!("{}: {failure}", path.display()));
        let hex: String = vector
            .signature()
            .iter()
            .map(|byte| format!("{byte:02x}"))
            .collect();
        // The file name carries the first signature bytes, so a stale bank
        // (signature drifted after a merger change) fails loudly here.
        let stem = path.file_stem().unwrap().to_string_lossy();
        if let Some((_, tag)) = stem.rsplit_once('_') {
            assert_eq!(
                &hex[..8],
                tag,
                "{}: behavior signature drifted from the banked one \
                 (re-bank with `cargo run -p cpg-fuzz -- --bank`)",
                path.display()
            );
        }
        signatures.insert(vector.signature());
    }
    assert!(
        signatures.len() >= 8,
        "the corpus must cover at least 8 distinct behavior signatures, got {}",
        signatures.len()
    );
}

#[test]
fn default_config_matches_the_pinned_baseline() {
    // `MergeConfig::new` honours `CPG_MERGE_THREADS`, so under the CI
    // matrix this compares the 4-worker merge against the pinned
    // single-threaded baseline on every corpus entry.
    for (path, workload) in load_corpus() {
        let Ok(system) = workload.materialize() else {
            continue;
        };
        if cpg_merge::validate_system(system.cpg(), system.arch()).is_err() {
            continue;
        }
        let tau0 = system.broadcast_time();
        let baseline = generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(tau0).with_threads(1),
        );
        let default = generate_schedule_table(system.cpg(), system.arch(), &MergeConfig::new(tau0));
        assert!(
            divergence(&baseline, &default).is_none(),
            "{}: default-config merge diverged from the pinned baseline: {}",
            path.display(),
            divergence(&baseline, &default).unwrap()
        );
    }
}

#[test]
fn injected_walk_panic_is_caught_by_the_no_panic_oracle() {
    let _lock = lock();
    let caught = run_sabotaged(|| Box::new(sabotage::InjectWalkPanic::engage()));
    assert_caught_by(&caught, OracleKind::NoPanic, "inject-walk-panic");
}

#[test]
fn dirty_lock_reuse_is_caught_by_the_cloning_oracle() {
    let _lock = lock();
    let caught = run_sabotaged(|| Box::new(sabotage::DirtyLockReuse::engage()));
    assert_caught_by(&caught, OracleKind::CloningWalk, "dirty-lock-reuse");
}

#[test]
fn skipped_slip_repair_is_caught_by_the_realizability_oracle() {
    let _lock = lock();
    let caught = run_sabotaged(|| Box::new(sabotage::SkipSlipRepair::engage()));
    assert_caught_by(
        &caught,
        OracleKind::ReferenceRealizability,
        "skip-slip-repair",
    );
}

#[test]
fn skipped_back_validation_is_caught_by_the_thread_identity_oracle() {
    let _lock = lock();
    let caught = run_sabotaged(|| Box::new(sabotage::SkipBackValidation::engage()));
    assert_caught_by(&caught, OracleKind::ThreadIdentity, "skip-back-validation");
}

#[test]
fn skipped_entry_validation_is_caught_by_the_no_panic_net() {
    let _lock = lock();
    // Every pathological system the corpus carries panics the merge once
    // `validate_system` is skipped — the typed rejection is precisely the
    // panic barrier, so removing it is caught by the no-panic oracle (the
    // input-validation oracle's `try_*` probes are what trip the panics).
    let caught = run_sabotaged(|| Box::new(sabotage::SkipEntryValidation::engage()));
    assert_caught_by(&caught, OracleKind::NoPanic, "skip-entry-validation");
}

#[test]
fn skipped_splice_validation_is_caught_by_the_warm_vs_cold_oracle() {
    let _lock = lock();
    // Splice validation only matters on a warm session replaying edits, and
    // signature-preserving shrinking strips edits from banked entries (the
    // signature is a function of the unedited baseline), so this mutant
    // gets a dedicated edit-carrying workload, found by running the fuzzer
    // under the engaged mutant (`cpg-fuzz --seed 0x9002`).
    let workload = parse_entry(
        "nodes: 32\n\
         paths: 8\n\
         processors: 4\n\
         buses: 2\n\
         max_comm: 5\n\
         seed: 4047189490510347694\n\
         ops: rmdep:62 rmdep:15\n\
         edits: exec:19:416\n",
    )
    .unwrap();
    let system = workload.materialize().unwrap();
    // Healthy tree: the workload replays green.
    run_oracles(&workload, &system).unwrap();
    let saboteur = sabotage::SkipSpliceValidation::engage();
    let outcome = run_oracles(&workload, &system);
    drop(saboteur);
    let failure = outcome.expect_err("the sabotaged splice must diverge warm from cold");
    assert_eq!(
        failure.oracle,
        OracleKind::WarmVsCold,
        "expected the warm-vs-cold oracle, got: {failure}"
    );
    println!("skip-splice-validation caught: {failure}");
}

/// Regenerates the banked corpus. Run with
/// `cargo test --test adversarial_corpus -- --ignored --nocapture
/// regenerate_corpus` and paste each printed block into its named file
/// under `tests/corpus/adversarial/` — or run
/// `cargo run -p cpg-fuzz -- --seed 0x5eed --iterations 150 --bank
/// tests/corpus/adversarial` for the same result straight to disk.
#[test]
#[ignore = "corpus regeneration helper, not a check"]
fn regenerate_corpus() {
    let report = cpg_fuzz::fuzz(&FuzzConfig::new(0x5eed, 150));
    assert!(
        report.failures.is_empty(),
        "cannot bank while oracles fail: {:?}",
        report
            .failures
            .iter()
            .map(|failure| failure.failure.to_string())
            .collect::<Vec<_>>()
    );
    for (index, entry) in report.behaviors.iter().enumerate() {
        let signature = entry.vector.signature();
        let hex: String = signature.iter().map(|byte| format!("{byte:02x}")).collect();
        let shrunk = shrink_preserving_signature(&entry.workload, signature);
        println!("# --- w{index:02}_{}.txt ---", &hex[..8]);
        print!(
            "{}",
            encode_entry(
                &shrunk,
                &[
                    format!("Adversarial workload {index:02}: behavior signature {hex}."),
                    "Found by cpg-fuzz --seed 0x5eed; shrunk with ddmin.".to_owned(),
                ],
            )
        );
    }
}
