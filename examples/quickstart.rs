//! Quick start: model a small conditional application, map it on a
//! two-processor platform, generate its schedule table and inspect the
//! guaranteed worst-case delay.
//!
//! Run with `cargo run --example quickstart`.

use cps::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The target architecture: two programmable processors sharing a bus.
    let arch = Architecture::builder()
        .processor("cpu0")
        .processor("cpu1")
        .bus("bus")
        .build()?;
    let cpu0 = arch.pe_by_name("cpu0").expect("cpu0 exists");
    let cpu1 = arch.pe_by_name("cpu1").expect("cpu1 exists");

    // 2. The application: a sensor process computes a condition at run time;
    //    depending on it either an expensive filter or a cheaper fallback
    //    runs on the second processor, and an actuator consumes the result.
    let mut builder = Cpg::builder();
    let anomaly = builder.condition("anomaly");
    let sense = builder.process("sense", Time::new(3), cpu0);
    let filter = builder.process("filter", Time::new(9), cpu1);
    let fallback = builder.process("fallback", Time::new(7), cpu1);
    let actuate = builder.process("actuate", Time::new(2), cpu0);
    builder.conditional_edge(sense, filter, anomaly.is_true(), Time::new(2));
    builder.conditional_edge(sense, fallback, anomaly.is_false(), Time::new(2));
    builder.simple_edge(filter, actuate, Time::new(2));
    builder.simple_edge(fallback, actuate, Time::new(2));
    builder.mark_conjunction(actuate);
    let cpg = builder.build(&arch)?;

    // 3. Insert the communication processes for every edge that crosses
    //    processors (they are scheduled on the bus like any other process).
    let cpg = expand_communications(&cpg, &arch, BusPolicy::FirstBus)?;
    println!("application: {cpg}");

    // 4. Generate the schedule table (condition broadcast time tau0 = 1).
    let result = generate_schedule_table(&cpg, &arch, &MergeConfig::new(Time::new(1)));
    println!("\nschedule table:\n{}", result.table().render(&cpg));
    println!(
        "longest individual path delta_M = {}, guaranteed worst case delta_max = {} (+{:.1}%)",
        result.delta_m(),
        result.delta_max(),
        result.overhead_percent()
    );

    // 5. Check the table statically (requirements 1-3 of the paper) and by
    //    executing it for every combination of condition values.
    result
        .table()
        .verify(&cpg, result.tracks())
        .expect("generated tables satisfy the paper's requirements");
    let simulator = Simulator::new(&cpg, &arch, result.table(), Time::new(1));
    for report in simulator.run_all(result.tracks()) {
        println!(
            "execution with {}: delay {} ({} violations)",
            cpg.display_cube(&report.label()),
            report.delay(),
            report.violations().len()
        );
    }

    // 6. Compare against a scheduler that ignores the control flow.
    let baseline = condition_oblivious_baseline(&cpg, &arch, Time::new(1));
    println!(
        "\ncondition-oblivious baseline worst case: {} (condition-aware table: {})",
        baseline.delay(),
        result.delta_max()
    );

    // 7. Emit the per-processor dispatch pseudo-code a run-time kernel would
    //    execute (the synthesis output of the flow).
    println!();
    for dispatch in cps::table::per_processor_dispatch(result.table(), &cpg, &arch) {
        if !dispatch.is_empty() {
            print!("{}", dispatch.render_pseudocode(&cpg, &arch));
        }
    }
    Ok(())
}
