//! Adaptive cruise control on a two-ECU platform.
//!
//! This is the kind of application the paper's introduction motivates: a
//! distributed embedded controller whose behaviour depends on run-time
//! conditions (is there an obstacle? did the driver override?), implemented
//! on two electronic control units and a dedicated braking ASIC connected by
//! a CAN-like bus. The example builds the conditional process graph, derives
//! the schedule table, and shows how the guaranteed worst-case latency from
//! sensor reading to actuation compares across the possible scenarios.
//!
//! Run with `cargo run --example cruise_control`.

use cps::prelude::*;

/// Builds the cruise-control conditional process graph.
fn build_application(
    arch: &Architecture,
) -> Result<(Cpg, Vec<CondId>), Box<dyn std::error::Error>> {
    let ecu0 = arch.pe_by_name("ecu0").expect("ecu0 exists");
    let ecu1 = arch.pe_by_name("ecu1").expect("ecu1 exists");
    let brake_asic = arch.pe_by_name("brake-asic").expect("brake-asic exists");

    let mut b = Cpg::builder();
    let obstacle = b.condition("obstacle");
    let critical = b.condition("critical");
    let override_ = b.condition("driver_override");

    // Sensor fusion runs on ECU0 every control period.
    let radar = b.process("radar_read", Time::new(4), ecu0);
    let camera = b.process("camera_read", Time::new(6), ecu1);
    let fuse = b.process("fuse_tracks", Time::new(8), ecu0);
    b.simple_edge(radar, fuse, Time::ZERO);
    b.simple_edge(camera, fuse, Time::new(3));

    // `fuse_tracks` decides whether an obstacle is relevant.
    let classify = b.process("classify", Time::new(5), ecu0);
    b.simple_edge(fuse, classify, Time::ZERO);

    // Obstacle branch: assess severity, then either emergency braking on the
    // ASIC or comfortable deceleration on ECU1.
    let assess = b.process("assess_threat", Time::new(7), ecu1);
    b.conditional_edge(classify, assess, obstacle.is_true(), Time::new(3));
    let emergency = b.process("emergency_brake", Time::new(6), brake_asic);
    b.conditional_edge(assess, emergency, critical.is_true(), Time::new(2));
    let comfort = b.process("comfort_decel", Time::new(9), ecu1);
    b.conditional_edge(assess, comfort, critical.is_false(), Time::ZERO);
    let obstacle_plan = b.process("obstacle_plan", Time::new(4), ecu1);
    b.mark_conjunction(obstacle_plan);
    b.simple_edge(emergency, obstacle_plan, Time::new(2));
    b.simple_edge(comfort, obstacle_plan, Time::ZERO);

    // Free-road branch: keep the set speed, optionally handing control back
    // to the driver.
    let keep_speed = b.process("keep_speed", Time::new(5), ecu0);
    b.conditional_edge(classify, keep_speed, obstacle.is_false(), Time::ZERO);
    let hand_back = b.process("hand_back", Time::new(3), ecu1);
    b.conditional_edge(keep_speed, hand_back, override_.is_true(), Time::ZERO);
    let hold = b.process("hold_setpoint", Time::new(4), ecu1);
    b.conditional_edge(keep_speed, hold, override_.is_false(), Time::ZERO);
    let cruise_plan = b.process("cruise_plan", Time::new(3), ecu1);
    b.mark_conjunction(cruise_plan);
    b.simple_edge(hand_back, cruise_plan, Time::ZERO);
    b.simple_edge(hold, cruise_plan, Time::ZERO);

    // Both branches meet at the actuation command sent to the powertrain.
    let actuate = b.process("actuate", Time::new(4), ecu0);
    b.mark_conjunction(actuate);
    b.simple_edge(obstacle_plan, actuate, Time::new(3));
    b.simple_edge(cruise_plan, actuate, Time::ZERO);
    let log = b.process("log_frame", Time::new(2), ecu1);
    b.simple_edge(actuate, log, Time::new(2));

    let cpg = b.build(arch)?;
    let cpg = expand_communications(&cpg, arch, BusPolicy::FirstBus)?;
    Ok((cpg, vec![obstacle, critical, override_]))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two ECUs, one braking ASIC, one CAN-like bus.
    let arch = Architecture::builder()
        .processor("ecu0")
        .processor("ecu1")
        .hardware("brake-asic")
        .bus("can")
        .build()?;
    let (cpg, conditions) = build_application(&arch)?;

    println!("cruise control application: {cpg}");
    println!(
        "conditions: {}",
        conditions
            .iter()
            .map(|&c| cpg.condition_name(c).to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Generate the schedule table.
    let tau0 = Time::new(1);
    let result = generate_schedule_table(&cpg, &arch, &MergeConfig::new(tau0));
    result
        .table()
        .verify(&cpg, result.tracks())
        .expect("correct table");

    println!("\nper-scenario latency (sensor reading to actuation):");
    println!(
        "{:<28} {:>16} {:>16}",
        "scenario", "optimal schedule", "schedule table"
    );
    for (track, schedule) in result.tracks().iter().zip(result.path_schedules()) {
        println!(
            "{:<28} {:>16} {:>16}",
            cpg.display_cube(&track.label()),
            schedule.delay(),
            result.table().track_delay(&cpg, &track.label())
        );
    }
    println!(
        "\nguaranteed worst-case latency delta_max = {} (lower bound delta_M = {}, +{:.1}%)",
        result.delta_max(),
        result.delta_m(),
        result.overhead_percent()
    );

    // Execute the table for the most critical scenario and show when the
    // emergency brake command is issued.
    let simulator = Simulator::new(&cpg, &arch, result.table(), tau0);
    let critical_track = result
        .tracks()
        .iter()
        .find(|t| {
            t.label().contains(conditions[0].is_true())
                && t.label().contains(conditions[1].is_true())
        })
        .expect("the critical scenario exists");
    let report = simulator.run(&critical_track.label());
    let emergency = cpg
        .process_by_name("emergency_brake")
        .expect("process exists");
    println!(
        "\nin the critical scenario the emergency brake activates at t = {} and the frame completes at t = {}",
        report
            .activation_of(Job::Process(emergency))
            .expect("emergency brake runs in the critical scenario"),
        report.delay()
    );

    // How much does condition awareness buy compared to a static data-flow
    // schedule that always reserves time for everything?
    let baseline = condition_oblivious_baseline(&cpg, &arch, tau0);
    println!(
        "condition-oblivious baseline worst case: {} versus {} with the schedule table",
        baseline.delay(),
        result.delta_max()
    );

    // Resource utilisation in the worst-case scenario: is the platform
    // over-provisioned?
    let worst_track = result
        .tracks()
        .iter()
        .max_by_key(|t| result.table().track_delay(&cpg, &t.label()))
        .expect("there is at least one scenario");
    println!(
        "\nresource utilisation in the worst-case scenario ({}):",
        cpg.display_cube(&worst_track.label())
    );
    for load in cps::table::utilization(result.table(), &cpg, &arch, &worst_track.label()) {
        println!(
            "  {:<12} {:>3} jobs, busy {:>3} of {} ({:.0}%)",
            arch.pe(load.pe).name(),
            load.jobs,
            load.busy,
            result.delta_max(),
            load.utilization_percent
        );
    }
    Ok(())
}
