//! Design-space exploration: how many processors and buses does a given
//! conditional application actually need?
//!
//! Scheduling is "a factor with a decisive influence on the performance of
//! the system" (Section 1 of the paper) and is used not only for synthesis
//! but also for performance estimation of candidate architectures. This
//! example takes one randomly generated application (fixed seed, 60 processes
//! and 18 alternative paths), re-maps it onto architectures with one to four
//! processors and one or two buses, and reports the guaranteed worst-case
//! delay of each candidate — the estimation loop a system designer would run.
//!
//! The second half shows the *inner* loop of that workflow: once an
//! architecture is chosen, the designer tunes individual worst-case
//! execution times and re-estimates after every tweak. A [`MergeSession`]
//! keeps the explored decision tree between merges and replays every subtree
//! the edit provably cannot affect, so each re-estimate costs a fraction of
//! a cold merge while producing the bit-identical table.
//!
//! Run with `cargo run --release --example design_space_exploration`.

use cps::prelude::*;

fn main() {
    let deadline = Time::new(300);
    println!("design-space exploration of a 60-process application (18 alternative paths)\n");
    println!(
        "{:>11} {:>7} {:>9} {:>9} {:>10} {:>12}",
        "processors", "buses", "delta_M", "delta_max", "increase", "vs deadline"
    );

    let mut best: Option<(usize, usize, Time)> = None;
    for processors in 1..=4 {
        for buses in 1..=2 {
            // The same application logic (same seed), mapped on the candidate
            // architecture: the generator keeps the graph structure and
            // execution times deterministic for a given seed and re-draws the
            // mapping for the available processors.
            let config = GeneratorConfig::new(60, 18)
                .with_processors(processors)
                .with_buses(buses)
                .with_seed(0xD5E7)
                .with_max_comm_time(4);
            let system = generate(&config);
            let result = generate_schedule_table(
                system.cpg(),
                system.arch(),
                &MergeConfig::new(system.broadcast_time()),
            );
            result
                .table()
                .verify(system.cpg(), result.tracks())
                .expect("generated tables are correct");

            let meets = result.delta_max() <= deadline;
            println!(
                "{:>11} {:>7} {:>9} {:>9} {:>9.2}% {:>12}",
                processors,
                buses,
                result.delta_m(),
                result.delta_max(),
                result.overhead_percent(),
                if meets { "meets" } else { "misses" }
            );
            if meets && best.is_none() {
                best = Some((processors, buses, result.delta_max()));
            }
        }
    }

    match best {
        Some((processors, buses, delay)) => println!(
            "\nsmallest architecture meeting the {deadline}-unit deadline: {processors} processor(s), {buses} bus(es) (worst case {delay})"
        ),
        None => println!("\nno candidate architecture meets the {deadline}-unit deadline"),
    }

    // The same loop also serves pure performance estimation: compare the
    // condition-aware worst case against the condition-oblivious baseline on
    // the largest candidate.
    let config = GeneratorConfig::new(60, 18)
        .with_processors(4)
        .with_buses(2)
        .with_seed(0xD5E7)
        .with_max_comm_time(4);
    let system = generate(&config);
    let merged = generate_schedule_table(
        system.cpg(),
        system.arch(),
        &MergeConfig::new(system.broadcast_time()),
    );
    let baseline =
        condition_oblivious_baseline(system.cpg(), system.arch(), system.broadcast_time());
    println!(
        "\non the 4-processor architecture: condition-aware worst case {}, condition-oblivious {}",
        merged.delta_max(),
        baseline.delay()
    );

    // Incremental tuning on the chosen architecture: tighten a few WCETs one
    // by one and re-estimate after each edit. The session replays every
    // cached decision subtree outside the edit's scope, so each warm merge
    // re-walks only the invalidated region of the tree — and still produces
    // the table a cold merge of the edited system would.
    println!("\nincremental WCET tuning on the 4-processor architecture:");
    println!(
        "{:>6} {:>24} {:>9} {:>9} {:>10} {:>10}",
        "step", "edit", "delta_M", "delta_max", "replayed", "re-walked"
    );
    let mut session = MergeSession::new(
        system.cpg(),
        system.arch(),
        &MergeConfig::new(system.broadcast_time()),
    );
    let cold = session.merge();
    println!(
        "{:>6} {:>24} {:>9} {:>9} {:>10} {:>10}",
        0,
        "(cold merge)",
        cold.delta_m(),
        cold.delta_max(),
        session.reuse_stats().chains_replayed,
        session.reuse_stats().chains_recorded
    );
    let tuned: Vec<ProcessId> = system.cpg().ordinary_processes().take(3).collect();
    for (step, &process) in tuned.iter().enumerate() {
        let time = system.cpg().exec_time(process) + Time::new(2);
        let edit = SystemEdit::ExecTime { process, time };
        let label = edit.to_string();
        session
            .apply_edit(&edit)
            .expect("generated processes are editable");
        let result = session.merge();
        result
            .table()
            .verify(session.cpg(), result.tracks())
            .expect("incrementally re-merged tables are correct");
        println!(
            "{:>6} {:>24} {:>9} {:>9} {:>10} {:>10}",
            step + 1,
            label,
            result.delta_m(),
            result.delta_max(),
            session.reuse_stats().chains_replayed,
            session.reuse_stats().chains_recorded
        );
    }
}
