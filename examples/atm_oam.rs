//! The paper's real-life example: selecting an implementation architecture
//! for the OAM block of an ATM switch (F4 level).
//!
//! The OAM block has three operating modes; for each candidate architecture
//! (one or two 486/Pentium processors, one or two memory modules) a schedule
//! table is generated per mode and the worst-case delays guide the
//! architecture decision, exactly like the paper's Table 2.
//!
//! Run with `cargo run --release --example atm_oam`.

use cps::atm::{evaluate, schedule_mode, MappingStrategy, OamMode, OamPlatform};
use cps::prelude::*;

fn main() {
    println!("OAM block architecture exploration (paper Table 2)\n");

    let platforms = OamPlatform::paper_platforms();
    println!(
        "{:<20} {:>12} {:>12} {:>12}",
        "architecture", "mode 1 (ns)", "mode 2 (ns)", "mode 3 (ns)"
    );
    let mut per_platform: Vec<(String, Vec<Time>)> = Vec::new();
    for platform in &platforms {
        let delays: Vec<Time> = OamMode::all()
            .iter()
            .map(|&mode| evaluate(mode, platform).delay())
            .collect();
        println!(
            "{:<20} {:>12} {:>12} {:>12}",
            platform.name(),
            delays[0],
            delays[1],
            delays[2]
        );
        per_platform.push((platform.name(), delays));
    }

    // A simple selection rule: the cheapest architecture (fewest processors,
    // slowest CPUs, fewest memories) whose worst mode still meets a deadline.
    let deadline = Time::new(3600);
    println!("\nassuming every mode must complete within {deadline} ns:");
    for (name, delays) in &per_platform {
        let worst = delays.iter().copied().max().unwrap_or(Time::ZERO);
        let verdict = if worst <= deadline { "meets" } else { "misses" };
        println!("  {name:<20} worst mode {worst:>6} ns -> {verdict} the deadline");
    }

    // Show the schedule table of the most constrained mode on one platform.
    let chosen = OamPlatform::new(vec![CpuModel::Pentium, CpuModel::Pentium], 2);
    println!(
        "\nschedule statistics of mode 1 on {} (balanced mapping):",
        chosen.name()
    );
    let result = schedule_mode(OamMode::Monitoring, &chosen, MappingStrategy::Balanced);
    println!(
        "  {} alternative paths, {} table rows, {} columns, {} entries",
        result.tracks().len(),
        result.table().num_rows(),
        result.table().num_columns(),
        result.table().num_entries()
    );
    println!(
        "  delta_M = {} ns, delta_max = {} ns (+{:.1}%)",
        result.delta_m(),
        result.delta_max(),
        result.overhead_percent()
    );
}
