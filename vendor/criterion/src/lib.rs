//! Offline shim of the subset of the `criterion` 0.5 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small wall-clock benchmarking harness with the same surface syntax:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_function` /
//! `bench_with_input`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros for `harness = false` bench targets.
//!
//! Measurement model: after a short warm-up, each benchmark is sampled
//! `sample_size` times (default 15, clamped to 5–50); every sample runs the
//! routine for enough iterations to fill a ~10 ms window and the
//! per-iteration median over the samples is reported. The sample count is
//! deliberately high enough that committed baselines can record plain
//! single-run medians instead of worst-of-N medians. When the
//! `CRITERION_JSON` environment variable names a file, one JSON line per
//! benchmark (`{"benchmark": .., "median_ns_per_iter": ..}`) is appended to
//! it — this is how the repository's `BENCH_*.json` baselines are produced.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    median_ns: f64,
    samples: usize,
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher {
            median_ns: 0.0,
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Bencher {
    fn with_samples(samples: usize) -> Self {
        Bencher {
            median_ns: 0.0,
            samples: samples.clamp(MIN_SAMPLES, MAX_SAMPLES),
        }
    }

    /// Measures `routine`, keeping its output alive through a black box.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and iteration-count calibration: aim for ~10 ms samples.
        let calibration = Instant::now();
        std_black_box(routine());
        let once = calibration.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(10);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Default, floor and ceiling of the per-benchmark sample count. The default
/// is high enough that a single run's median is a usable baseline on shared
/// containers (the old cap of 5 forced worst-of-N-runs baselines).
const DEFAULT_SAMPLES: usize = 15;
const MIN_SAMPLES: usize = 5;
const MAX_SAMPLES: usize = 50;

/// The benchmark manager; one per bench target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored: the shim
    /// has no CLI options, but `cargo bench` passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
        }
    }

    /// Benchmarks a standalone routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(name, bencher.median_ns);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (clamped to the shim's internal
    /// bounds when the benchmarks run).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Benchmarks a routine parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::with_samples(self.sample_size);
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), bencher.median_ns);
        self
    }

    /// Benchmarks an unparameterised routine within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::with_samples(self.sample_size);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, name), bencher.median_ns);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(benchmark: &str, median_ns: f64) {
    let human = if median_ns >= 1e9 {
        format!("{:.3} s", median_ns / 1e9)
    } else if median_ns >= 1e6 {
        format!("{:.3} ms", median_ns / 1e6)
    } else if median_ns >= 1e3 {
        format!("{:.3} µs", median_ns / 1e3)
    } else {
        format!("{median_ns:.1} ns")
    };
    println!("{benchmark:<50} time: {human}");

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"benchmark\": \"{benchmark}\", \"median_ns_per_iter\": {median_ns:.1}}}"
            );
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn groups_and_benchers_run() {
        benches();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| black_box(n) + 1)
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("merge", 32).to_string(), "merge/32");
        assert_eq!(BenchmarkId::from_parameter(120).to_string(), "120");
    }
}
