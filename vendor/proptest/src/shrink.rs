//! Standalone input minimization (delta debugging).
//!
//! The shim's [`proptest!`](crate::proptest) runner reports failing cases
//! verbatim instead of shrinking them (see the crate docs). Fuzzers that
//! manage their own inputs — lists of mutation operations, edit sequences,
//! event schedules — can still minimize offenders with [`minimize_list`], a
//! ddmin-style reducer over an explicit failure predicate.

/// Minimizes `items` to a smaller list that still satisfies `fails`.
///
/// `fails` must return `true` for the *failing* (interesting) behavior; the
/// input list itself is expected to fail. The reducer repeatedly deletes
/// chunks of halving size while the failure persists, so the result is
/// 1-minimal with respect to chunk deletion: removing any single remaining
/// element (on its own) makes the failure disappear.
///
/// The predicate is invoked `O(n log n)` times in the typical case and the
/// returned list preserves the relative order of the surviving elements. If
/// the input does not fail, it is returned unchanged.
///
/// # Example
///
/// ```
/// use proptest::shrink::minimize_list;
///
/// // "Fails" whenever both 3 and 7 are present.
/// let offender = vec![1, 3, 5, 7, 9, 11];
/// let minimal = minimize_list(&offender, |items| {
///     items.contains(&3) && items.contains(&7)
/// });
/// assert_eq!(minimal, vec![3, 7]);
/// ```
pub fn minimize_list<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if !fails(&current) {
        return current;
    }
    let mut chunk = current.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if fails(&candidate) {
                // The deleted chunk was irrelevant; retry the same offset,
                // which now addresses the elements that slid into its place.
                current = candidate;
                progressed = true;
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !progressed {
                return current;
            }
            // Deletions at granularity 1 slid new elements together; one
            // more sweep may unlock further deletions.
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_pair_reduces_to_the_pair() {
        let input: Vec<u32> = (0..64).collect();
        let minimal = minimize_list(&input, |items| items.contains(&13) && items.contains(&57));
        assert_eq!(minimal, vec![13, 57]);
    }

    #[test]
    fn single_culprit_reduces_to_one_element() {
        let input: Vec<u32> = (0..33).collect();
        let minimal = minimize_list(&input, |items| items.contains(&17));
        assert_eq!(minimal, vec![17]);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let input = vec![1, 2, 3];
        let calls = std::cell::Cell::new(0);
        let minimal = minimize_list(&input, |_| {
            calls.set(calls.get() + 1);
            false
        });
        assert_eq!(minimal, input);
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn order_dependent_failures_keep_relative_order() {
        // Fails when 5 appears before 2.
        let input = vec![9, 5, 8, 2, 7];
        let minimal = minimize_list(&input, |items| {
            let five = items.iter().position(|&x| x == 5);
            let two = items.iter().position(|&x| x == 2);
            matches!((five, two), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(minimal, vec![5, 2]);
    }

    #[test]
    fn whole_list_failures_stay_whole() {
        let input = vec![1, 2, 3, 4];
        let minimal = minimize_list(&input, |items| items.len() == 4);
        assert_eq!(minimal, input);
    }

    #[test]
    fn empty_input_is_handled() {
        let minimal = minimize_list(&Vec::<u8>::new(), |_| true);
        assert!(minimal.is_empty());
    }
}
