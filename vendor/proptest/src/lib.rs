//! Offline shim of the subset of the `proptest` 1.x API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal property-testing engine with the same surface syntax as the real
//! crate: the [`proptest!`] macro, [`Strategy`] with `prop_map`, [`any`],
//! `proptest::collection::vec`, tuple and range strategies, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No automatic shrinking.** A failing case reports the generated inputs
//!   verbatim (every strategy value is `Debug`-printed by the caller's
//!   assertions); `max_shrink_iters` is accepted for source compatibility and
//!   ignored. Callers that manage their own inputs can minimize offenders
//!   explicitly with [`shrink::minimize_list`].
//! * **Deterministic RNG.** Each test function derives its seed from its own
//!   name (FNV-1a), so runs are reproducible across machines and CI without
//!   a persisted failure file. Set `PROPTEST_SEED` to explore other streams,
//!   and `PROPTEST_CASES` to override the case count globally.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod shrink;

pub mod test_runner {
    //! Runtime pieces used by the [`proptest!`](crate::proptest) macro
    //! expansion.

    use super::*;

    /// Failure raised by the `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The per-test RNG: SplitMix64 seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Derives a deterministic RNG for the named test. `PROPTEST_SEED`
        /// overrides the seed for ad-hoc exploration.
        pub fn deterministic(test_name: &str) -> Self {
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = seed.parse::<u64>() {
                    return TestRng(StdRng::seed_from_u64(seed));
                }
            }
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub use test_runner::{TestCaseError, TestRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; this shim never forks.
    pub fork: bool,
    /// Accepted for source compatibility; this shim prints nothing extra.
    pub verbose: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let max_shrink_iters = std::env::var("PROPTEST_MAX_SHRINK_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        ProptestConfig {
            cases,
            max_shrink_iters,
            fork: false,
            verbose: 0,
        }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

/// Generates arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    //! Strategies over collections.

    use super::*;

    /// Ranges of collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max_exclusive: *range.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 >= self.size.max_exclusive {
                self.size.min
            } else {
                rng.random_range(self.size.min..self.size.max_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! Namespaced strategy constants, mirroring `proptest::prop`.

    /// Boolean strategies.
    pub mod bool {
        /// Generates arbitrary booleans.
        pub const ANY: crate::Any<::core::primitive::bool> =
            crate::Any(::core::marker::PhantomData);
    }
}

/// The usual glob import: strategies, config, macros.
pub mod prelude {
    /// Re-export so `prop_assert*` expansions resolve inside user crates.
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Runs `cases` iterations of a property, panicking on the first failure.
///
/// This is the runtime behind the [`proptest!`] macro; it is public so the
/// macro expansion can reach it from other crates.
pub fn run_property<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::deterministic(test_name);
    for index in 0..config.cases {
        if let Err(error) = case(&mut rng, index) {
            panic!(
                "proptest '{test_name}' failed at case {index}/{}: {error}",
                config.cases
            );
        }
    }
}

/// Declares deterministic property tests.
///
/// Supports the same surface syntax as the real `proptest!` macro for the
/// patterns used in this workspace: an optional
/// `#![proptest_config(<expr>)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(stringify!($name), &config, |rng, _case| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// `assert!` that reports failure to the proptest runner instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left,
                            right
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{}` != `{}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuples_ranges_and_maps_compose(
            pair in (0usize..10, any::<bool>()).prop_map(|(n, b)| (n * 2, b)),
            flag in prop::bool::ANY,
            items in crate::collection::vec(0u64..100, 0..8),
        ) {
            prop_assert!(pair.0 < 20);
            prop_assert_eq!(pair.0 % 2, 0);
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(items.len() < 8);
            for item in &items {
                prop_assert!(*item < 100);
            }
        }

        #[test]
        fn early_return_is_accepted(n in 0usize..4) {
            if n == 0 {
                return Ok(());
            }
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use crate::test_runner::TestRng;
        use rand::RngCore;
        let mut a = TestRng::deterministic("some_test");
        let mut b = TestRng::deterministic("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
