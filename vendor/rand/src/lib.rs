//! Offline shim of the subset of the `rand` 0.9 API used by this workspace.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors a minimal, dependency-free implementation of the
//! types it needs: [`rngs::StdRng`], [`SeedableRng`] and [`Rng`] with the
//! 0.9-era method names (`random_range`, `random_bool`, `random`).
//!
//! The generator is SplitMix64 — statistically fine for workload generation
//! and property testing, deterministic for a given seed, and obviously not
//! cryptographically secure (neither is the real `StdRng` contract for the
//! purposes this workspace puts it to).

#![forbid(unsafe_code)]

/// Random number generator implementations.
pub mod rngs {
    /// The standard RNG, seeded deterministically via
    /// [`SeedableRng::seed_from_u64`](crate::SeedableRng::seed_from_u64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// A source of uniformly distributed `u64` values.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so that small consecutive seeds give unrelated streams.
        let mut rng = StdRng {
            state: seed ^ 0x5DEE_CE66_D569_3A53,
        };
        let _ = rng.next_u64();
        rng
    }
}

/// A range that values can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, i64);

/// User-facing random-value methods, mirroring `rand::Rng` of 0.9.
pub trait Rng: RngCore {
    /// Returns a value uniformly distributed over `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }

    /// Returns a random value of type `T`; for `f64`, uniform in `[0, 1)`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be produced uniformly at random.
pub trait Random {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn random_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }
}
