//! Offline fork-join shim: a rayon-style parallel map built on scoped
//! threads, with nothing but the standard library.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of fork-join it actually needs: run one closure over every
//! element of a slice, fan the work out over a fixed number of worker
//! threads, and hand the results back **in input order** regardless of which
//! worker computed what.
//!
//! Design:
//!
//! * **Chunked work queue.** Workers pull half-open index ranges off a shared
//!   atomic cursor instead of pre-splitting the slice, so a worker that draws
//!   only cheap items goes back for more and stragglers cannot serialize the
//!   tail. The chunk size shrinks with the item count to keep the queue
//!   balanced for short inputs.
//! * **Deterministic reduction.** Every result is tagged with the index of
//!   the item that produced it and placed into its slot after the join.
//!   Output `i` is the value of `f` applied to item `i` — bit-identical to
//!   the serial loop for any thread count (assuming `f` itself is a pure
//!   function of `(index, item)` and the per-worker state).
//! * **Per-worker state.** [`map_with`] gives each worker one value built by
//!   an `init` closure (a scratch arena, a buffer pool, an RNG), threaded
//!   mutably through every call that worker executes. State never crosses
//!   threads, so it needs neither `Send` nor `Sync`.
//! * **No spawn below two.** `threads <= 1`, an empty input, or a single item
//!   run the plain serial loop on the calling thread: callers can hardwire
//!   "1 forces the serial path" without a special case.
//! * **Cost-aware ordering.** [`map_with_cost`] additionally takes a cost
//!   estimate per item and hands the items to the workers largest-first
//!   (classic LPT order), so one giant item drawn late cannot serialize the
//!   tail behind a fleet of cheap ones. The reduction is still by input
//!   index, so the result is bit-identical to [`map_with`].
//! * **Nested-pool policy.** A worker thread marks itself; any `fj` call
//!   made *from inside a worker* runs serially on that worker instead of
//!   spawning a second pool level. An outer fan-out over independent tasks
//!   (e.g. whole systems) therefore composes with inner fan-outs (e.g. the
//!   tracks of each system's merge) without oversubscribing the machine —
//!   and without the inner caller having to know it is nested.
//!
//! Worker panics are joined and re-raised on the calling thread
//! (`std::thread::scope` additionally guarantees no worker outlives the
//! call), so a panicking `f` behaves like it would in the serial loop.
//!
//! # Example
//!
//! ```
//! let squares = fj::map(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Per-worker scratch: each worker reuses one buffer across its items.
//! let sums = fj::map_with(
//!     2,
//!     &[3usize, 1, 4],
//!     Vec::<u64>::new,
//!     |buf, _, &n| {
//!         buf.clear();
//!         buf.extend(1..=n as u64);
//!         buf.iter().sum::<u64>()
//!     },
//! );
//! assert_eq!(sums, vec![6, 1, 10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "race-check")]
pub mod race;

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

std::thread_local! {
    /// `true` on threads spawned as pool workers by this crate — the flag
    /// behind the nested-pool policy (see [`in_worker`]).
    static POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` when the current thread is an `fj` pool worker. Any `map`/
/// `map_with`/`map_with_cost` call made while this holds runs serially on
/// the calling worker instead of spawning a nested pool: the outer fan-out
/// already owns the machine's cores, so a second level would only
/// oversubscribe them.
#[must_use]
pub fn in_worker() -> bool {
    POOL_WORKER.with(Cell::get)
}

/// The number of hardware threads available to this process, as reported by
/// [`std::thread::available_parallelism`]; `1` when the platform cannot tell.
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parallel map without per-worker state: `map(threads, items, f)[i]` is
/// `f(i, &items[i])`, computed on up to `threads` worker threads.
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(threads, items, || (), |(), index, item| f(index, item))
}

/// Parallel map with per-worker state: each worker owns one value produced by
/// `init()` and threads it mutably through every `f(&mut state, index, item)`
/// call it executes. Results come back in input order for any thread count.
///
/// `threads <= 1`, inputs of at most one item, and calls made from inside an
/// `fj` worker (the nested-pool policy, see [`in_worker`]) run serially on
/// the calling thread with a single `init()` state and never spawn.
pub fn map_with<T, S, R, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    // Under an active race exploration the fan-out collapses onto the
    // calling vthread: same serial order, but with a schedulable yield per
    // work-queue pop so other vthreads can interleave between items.
    #[cfg(feature = "race-check")]
    if race::on_vthread() {
        return serial_with_pop_yields(items, init, f);
    }
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(&mut state, index, item))
            .collect();
    }

    // Small chunks keep the queue balanced when items have skewed costs;
    // aiming for ~4 draws per worker bounds the cursor contention.
    let chunk = (items.len() / (threads * 4)).max(1);
    pool_run(
        threads,
        items.len(),
        init,
        |state, index| {
            let item = &items[index];
            f(state, index, item)
        },
        chunk,
        None,
    )
}

/// [`map_with`], but with a cost estimate per item: the items are handed to
/// the workers in descending `cost(index, item)` order (ties by index), the
/// classic longest-processing-time heuristic. With heavily skewed costs —
/// one giant item among many tiny ones — this keeps every worker busy until
/// the end instead of letting the giant serialize the tail. The reduction is
/// still by input index, so for a pure `f` the result is bit-identical to
/// [`map_with`] for any thread count.
///
/// The serial paths (`threads <= 1`, at most one item, nested call from a
/// worker) iterate in plain input order — the order only affects wall-clock,
/// never the result.
pub fn map_with_cost<T, S, R, I, F, C>(
    threads: usize,
    items: &[T],
    cost: C,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    C: Fn(usize, &T) -> u64,
{
    // See map_with: a race exploration serializes the fan-out with yields.
    // Input order, not LPT order — the cost order only affects wall-clock
    // and the virtual scheduler owns the clock.
    #[cfg(feature = "race-check")]
    if race::on_vthread() {
        return serial_with_pop_yields(items, init, f);
    }
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(&mut state, index, item))
            .collect();
    }

    let mut order: Vec<u32> = (0..items.len() as u32).collect();
    // Cached key: the caller's cost estimate runs exactly once per item.
    order.sort_by_cached_key(|&index| {
        (
            std::cmp::Reverse(cost(index as usize, &items[index as usize])),
            index,
        )
    });
    // Draw one item at a time: LPT only helps if the giant items really go
    // out first, and the per-draw cursor bump is negligible against items
    // worth cost-ordering in the first place.
    pool_run(
        threads,
        items.len(),
        init,
        |state, index| f(state, index, &items[index]),
        1,
        Some(&order),
    )
}

/// Shared worker-pool core of [`map_with`] and [`map_with_cost`]: spawn
/// `threads` marked workers, let them pull half-open ranges of *draw
/// positions* off a shared cursor, run `produce(state, index)` for each
/// (`order` maps draw positions to input indices, `None` = identity), and
/// place every result into its input slot.
fn pool_run<S, R, I, P>(
    threads: usize,
    len: usize,
    init: I,
    produce: P,
    chunk: usize,
    order: Option<&[u32]>,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    P: Fn(&mut S, usize) -> R + Sync,
{
    let cursor = AtomicUsize::new(0);

    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    POOL_WORKER.with(|flag| flag.set(true));
                    let mut state = init();
                    let mut produced = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        for position in start..end {
                            let index = order.map_or(position, |o| o[position] as usize);
                            produced.push((index, produce(&mut state, index)));
                        }
                    }
                    produced
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect()
    });

    // Deterministic reduction: place every tagged result into its input slot.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    for (index, result) in buckets.into_iter().flatten() {
        debug_assert!(slots[index].is_none(), "index {index} produced twice");
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is drawn from the queue exactly once"))
        .collect()
}

/// The serial collapse of `map_with`/`map_with_cost` on a virtual thread:
/// plain input order with one `Pop` yield point before each item, so a race
/// exploration can interleave other vthreads between the simulated
/// work-queue draws.
#[cfg(feature = "race-check")]
fn serial_with_pop_yields<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    I: Fn() -> S,
    F: Fn(&mut S, usize, &T) -> R,
{
    let mut state = init();
    items
        .iter()
        .enumerate()
        .map(|(index, item)| {
            race::yield_point(race::YieldKind::Pop);
            f(&mut state, index, item)
        })
        .collect()
}

/// The worker count a call will actually fan out to: clamped to the item
/// count, at least one, and forced to one inside an existing worker (the
/// nested-pool policy).
fn effective_threads(threads: usize, items: usize) -> usize {
    if in_worker() {
        return 1;
    }
    threads.min(items).max(1)
}

/// Cost-aware binary fork-join for recursive divide-and-conquer: runs `a` on
/// the calling thread and `b` on a freshly spawned scoped worker, splitting
/// the caller's thread `budget` between them proportionally to the cost
/// estimates (each side gets at least one thread). Returns both results;
/// a panic on either side resurfaces on the caller.
///
/// With `budget <= 1` both closures run serially on the calling thread, in
/// `a`-then-`b` order, each with a budget of one — so a recursive caller can
/// hardwire "budget 1 is the serial walk".
///
/// Unlike the `map` family this function does **not** consult [`in_worker`]:
/// the budget *is* the nesting policy. A recursive caller passes each side
/// its sub-budget, and once the budget bottoms out at one no further threads
/// are spawned, no matter how deep the recursion sits inside the pool. The
/// spawned side is marked as a pool worker so that any `map` calls made from
/// inside it still collapse onto it.
pub fn join_with_cost<RA, RB, A, B>(budget: usize, cost_a: u64, cost_b: u64, a: A, b: B) -> (RA, RB)
where
    RB: Send,
    A: FnOnce(usize) -> RA,
    B: FnOnce(usize) -> RB + Send,
{
    if budget <= 1 {
        let ra = a(1);
        let rb = b(1);
        return (ra, rb);
    }
    // Under an active race exploration the fork becomes a *virtual* fork:
    // `b` still gets its own OS thread, but the virtual scheduler decides
    // every interleaving of the two sides at their yield points.
    #[cfg(feature = "race-check")]
    if race::on_vthread() {
        return race::fork_join(budget, cost_a, cost_b, a, b);
    }
    let budget_b = split_budget(budget, cost_a, cost_b);
    let budget_a = budget - budget_b;
    std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            POOL_WORKER.with(|flag| flag.set(true));
            b(budget_b)
        });
        let ra = a(budget_a);
        let rb = handle
            .join()
            .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
        (ra, rb)
    })
}

/// The share of `budget` handed to the `b` side of [`join_with_cost`]:
/// proportional to `cost_b`, deterministic, and clamped so both sides keep at
/// least one thread. Zero costs count as one so a side with an unknown cost
/// still gets its minimum share.
fn split_budget(budget: usize, cost_a: u64, cost_b: u64) -> usize {
    debug_assert!(budget >= 2);
    let cost_a = cost_a.max(1);
    let cost_b = cost_b.max(1);
    let share = (budget as u128) * u128::from(cost_b) / (u128::from(cost_a) + u128::from(cost_b));
    (share as usize).clamp(1, budget - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 300] {
            assert_eq!(map(threads, &items, |_, &x| x * 3 + 1), expected);
        }
    }

    #[test]
    fn empty_and_single_inputs_never_spawn() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(map(8, &[7u32], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn indices_match_items() {
        let items = [10u64, 20, 30];
        let tagged = map(2, &items, |i, &x| (i, x));
        assert_eq!(tagged, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Each worker counts how many items it processed into its state; the
        // counts must sum to the item count, whatever the distribution.
        let items: Vec<u32> = (0..100).collect();
        let counts = map_with(
            4,
            &items,
            || 0usize,
            |seen, _, &x| {
                *seen += 1;
                (x, *seen)
            },
        );
        assert_eq!(counts.len(), items.len());
        // First component is the item: order preserved.
        for (i, &(x, seen)) in counts.iter().enumerate() {
            assert_eq!(x as usize, i);
            assert!(seen >= 1);
        }
    }

    #[test]
    fn cost_ordered_map_is_bit_identical_to_unordered() {
        // Heavily skewed synthetic costs, including ties: whatever order the
        // workers draw, the reduction by input index must reproduce the
        // plain map exactly.
        let items: Vec<u64> = (0..137).map(|i| (i * 37) % 11).collect();
        let expected = map_with(
            1,
            &items,
            || 0u64,
            |acc, i, &x| {
                *acc += 1;
                x * 3 + i as u64
            },
        );
        for threads in [1, 2, 3, 4, 8, 200] {
            let ordered = map_with_cost(
                threads,
                &items,
                |_, &x| x, // cost = value, many ties
                || 0u64,
                |acc, i, &x| {
                    *acc += 1;
                    x * 3 + i as u64
                },
            );
            assert_eq!(ordered, expected, "diverged at {threads} threads");
            let unordered = map_with(
                threads,
                &items,
                || 0u64,
                |acc, i, &x| {
                    *acc += 1;
                    x * 3 + i as u64
                },
            );
            assert_eq!(
                unordered, expected,
                "map_with diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn nested_call_from_a_worker_never_spawns() {
        use std::thread::ThreadId;
        // Outer pool with 4 workers; each item runs an inner map that
        // records the thread every inner item executed on. The nested-pool
        // policy must collapse the inner call onto the calling worker.
        let outer: Vec<u32> = (0..16).collect();
        let reports: Vec<(ThreadId, Vec<ThreadId>, bool)> = map(4, &outer, |_, &x| {
            assert!(in_worker(), "outer closure must run on a marked worker");
            let inner: Vec<u32> = (0..x + 2).collect();
            let inner_threads = map(8, &inner, |_, _| std::thread::current().id());
            (std::thread::current().id(), inner_threads, in_worker())
        });
        for (worker, inner_threads, still_marked) in reports {
            assert!(still_marked, "worker flag must survive a nested call");
            for inner in inner_threads {
                assert_eq!(inner, worker, "nested map spawned a worker thread");
            }
        }
        // Back on the calling thread the flag is off, so top-level calls
        // keep fanning out.
        assert!(!in_worker());
    }

    #[test]
    fn nested_cost_aware_call_from_a_worker_never_spawns() {
        let outer: Vec<u32> = (0..8).collect();
        let ok = map(3, &outer, |_, &x| {
            let inner: Vec<u32> = (0..x + 2).collect();
            let me = std::thread::current().id();
            map_with_cost(
                8,
                &inner,
                |_, &v| v as u64,
                || (),
                |(), _, _| std::thread::current().id() == me,
            )
            .into_iter()
            .all(|on_worker| on_worker)
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    fn join_serializes_at_budget_one_and_spawns_above() {
        use std::thread::ThreadId;
        let me = std::thread::current().id();
        // Budget 1: both sides on the caller, in order, with budget 1.
        let order = std::sync::Mutex::new(Vec::new());
        let ((ba, ta), (bb, tb)) = join_with_cost(
            1,
            10,
            1,
            |budget| {
                order.lock().unwrap().push('a');
                (budget, std::thread::current().id())
            },
            |budget| {
                order.lock().unwrap().push('b');
                (budget, std::thread::current().id())
            },
        );
        assert_eq!((ba, bb), (1, 1));
        assert_eq!((ta, tb), (me, me));
        assert_eq!(*order.lock().unwrap(), vec!['a', 'b']);

        // Budget >= 2: `b` runs on a marked worker, budgets partition the
        // caller's budget with both sides >= 1.
        let ((ba, ta), (bb, tb, marked)): ((usize, ThreadId), (usize, ThreadId, bool)) =
            join_with_cost(
                4,
                3,
                1,
                |budget| (budget, std::thread::current().id()),
                |budget| (budget, std::thread::current().id(), in_worker()),
            );
        assert_eq!(ta, me);
        assert_ne!(tb, me, "b side must run on its own thread");
        assert!(marked, "spawned side must be marked as a pool worker");
        assert_eq!(ba + bb, 4);
        assert!(ba >= 1 && bb >= 1);
        // Proportional split: the costlier `a` side keeps the larger share.
        assert!(ba >= bb);
        // The calling thread is not a worker afterwards.
        assert!(!in_worker());
    }

    #[test]
    fn join_budget_split_is_deterministic_and_total() {
        for budget in 2..20 {
            for &(ca, cb) in &[(0u64, 0u64), (1, 1), (100, 1), (1, 100), (7, 13)] {
                let b = split_budget(budget, ca, cb);
                assert!(b >= 1 && b < budget, "budget {budget} costs {ca}/{cb}");
                assert_eq!(b, split_budget(budget, ca, cb));
            }
        }
        // Extremes still leave the other side one thread.
        assert_eq!(split_budget(8, u64::MAX, 1), 1);
        assert_eq!(split_budget(8, 1, u64::MAX), 7);
    }

    #[test]
    fn join_ignores_the_worker_flag_and_nests_by_budget() {
        // A join inside a map worker still spawns when its budget allows:
        // the budget, not the flag, is the nesting policy.
        let spawned = map(2, &[0u32, 1], |_, _| {
            let me = std::thread::current().id();
            let ((), other) =
                join_with_cost(2, 1, 1, |_| (), |_| std::thread::current().id() != me);
            other
        });
        assert!(spawned.into_iter().all(|b| b));
    }

    #[test]
    fn join_propagates_panics_from_the_spawned_side() {
        let result = std::panic::catch_unwind(|| {
            join_with_cost(2, 1, 1, |_| 1u32, |_| -> u32 { panic!("boom") })
        });
        assert!(result.is_err());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            map(2, &[1u32, 2, 3, 4], |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
