//! Offline fork-join shim: a rayon-style parallel map built on scoped
//! threads, with nothing but the standard library.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of fork-join it actually needs: run one closure over every
//! element of a slice, fan the work out over a fixed number of worker
//! threads, and hand the results back **in input order** regardless of which
//! worker computed what.
//!
//! Design:
//!
//! * **Chunked work queue.** Workers pull half-open index ranges off a shared
//!   atomic cursor instead of pre-splitting the slice, so a worker that draws
//!   only cheap items goes back for more and stragglers cannot serialize the
//!   tail. The chunk size shrinks with the item count to keep the queue
//!   balanced for short inputs.
//! * **Deterministic reduction.** Every result is tagged with the index of
//!   the item that produced it and placed into its slot after the join.
//!   Output `i` is the value of `f` applied to item `i` — bit-identical to
//!   the serial loop for any thread count (assuming `f` itself is a pure
//!   function of `(index, item)` and the per-worker state).
//! * **Per-worker state.** [`map_with`] gives each worker one value built by
//!   an `init` closure (a scratch arena, a buffer pool, an RNG), threaded
//!   mutably through every call that worker executes. State never crosses
//!   threads, so it needs neither `Send` nor `Sync`.
//! * **No spawn below two.** `threads <= 1`, an empty input, or a single item
//!   run the plain serial loop on the calling thread: callers can hardwire
//!   "1 forces the serial path" without a special case.
//!
//! Worker panics are joined and re-raised on the calling thread
//! (`std::thread::scope` additionally guarantees no worker outlives the
//! call), so a panicking `f` behaves like it would in the serial loop.
//!
//! # Example
//!
//! ```
//! let squares = fj::map(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Per-worker scratch: each worker reuses one buffer across its items.
//! let sums = fj::map_with(
//!     2,
//!     &[3usize, 1, 4],
//!     Vec::<u64>::new,
//!     |buf, _, &n| {
//!         buf.clear();
//!         buf.extend(1..=n as u64);
//!         buf.iter().sum::<u64>()
//!     },
//! );
//! assert_eq!(sums, vec![6, 1, 10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of hardware threads available to this process, as reported by
/// [`std::thread::available_parallelism`]; `1` when the platform cannot tell.
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parallel map without per-worker state: `map(threads, items, f)[i]` is
/// `f(i, &items[i])`, computed on up to `threads` worker threads.
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(threads, items, || (), |(), index, item| f(index, item))
}

/// Parallel map with per-worker state: each worker owns one value produced by
/// `init()` and threads it mutably through every `f(&mut state, index, item)`
/// call it executes. Results come back in input order for any thread count.
///
/// `threads <= 1` (and inputs of at most one item) run serially on the
/// calling thread with a single `init()` state and never spawn.
pub fn map_with<T, S, R, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(&mut state, index, item))
            .collect();
    }

    // Small chunks keep the queue balanced when items have skewed costs;
    // aiming for ~4 draws per worker bounds the cursor contention.
    let chunk = (items.len() / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);

    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut produced = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (index, item) in (start..end).zip(&items[start..end]) {
                            produced.push((index, f(&mut state, index, item)));
                        }
                    }
                    produced
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect()
    });

    // Deterministic reduction: place every tagged result into its input slot.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (index, result) in buckets.into_iter().flatten() {
        debug_assert!(slots[index].is_none(), "index {index} produced twice");
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is drawn from the queue exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 300] {
            assert_eq!(map(threads, &items, |_, &x| x * 3 + 1), expected);
        }
    }

    #[test]
    fn empty_and_single_inputs_never_spawn() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(map(8, &[7u32], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn indices_match_items() {
        let items = [10u64, 20, 30];
        let tagged = map(2, &items, |i, &x| (i, x));
        assert_eq!(tagged, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Each worker counts how many items it processed into its state; the
        // counts must sum to the item count, whatever the distribution.
        let items: Vec<u32> = (0..100).collect();
        let counts = map_with(
            4,
            &items,
            || 0usize,
            |seen, _, &x| {
                *seen += 1;
                (x, *seen)
            },
        );
        assert_eq!(counts.len(), items.len());
        // First component is the item: order preserved.
        for (i, &(x, seen)) in counts.iter().enumerate() {
            assert_eq!(x as usize, i);
            assert!(seen >= 1);
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            map(2, &[1u32, 2, 3, 4], |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
