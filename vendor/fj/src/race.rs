//! Deterministic interleaving exploration for the fork-join shim.
//!
//! With the `race-check` feature on, [`explore`] runs a closure under a
//! *virtual scheduler*: every [`join_with_cost`](crate::join_with_cost) fork
//! still spawns a real OS thread, but the threads take turns — exactly one
//! "virtual thread" (vthread) holds the run token at any instant, and the
//! token changes hands only at explicit *yield points* (fork, work-queue
//! pop, `TxnLog::validate`, commit, speculative write). Each point where two
//! or more vthreads are runnable is a *choice point*; the sequence of
//! choices made at those points fully determines the schedule, so a run is
//! reproducible from its recorded choice trace (or the seed that generated
//! it) alone.
//!
//! The explorer drives the choice sequence three ways:
//!
//! * **Exhaustive** — depth-first enumeration over choice prefixes. After a
//!   run finishes, the last choice that still has an untried alternative is
//!   bumped and the schedule re-executes with that forced prefix; when no
//!   choice can be bumped the space is exhausted. Exhaustive enumeration is
//!   only tractable for small systems (a 2-worker fork has dozens of
//!   schedules, not millions) — cap it with
//!   [`ExploreConfig::max_schedules`].
//! * **Random** — seeded random walks (splitmix64): each schedule resolves
//!   every choice point from the stream of a per-schedule seed derived from
//!   the base seed and the schedule index, so any individual schedule can be
//!   replayed from `(seed, index)`.
//! * **Replay** — a recorded choice trace (e.g. from a banked corpus file or
//!   a previous report's [`Report::failing_trace`]) is forced verbatim.
//!
//! On top of the scheduler sits a **vector-clock happens-before detector**:
//! instrumented call sites report logical reads and writes of named cells
//! ([`read_cell`] / [`write_cell`]); fork and join edges maintain the
//! clocks, and any pair of accesses to the same cell — at least one of them
//! a write — that the clocks cannot order is reported as a [`Violation`]
//! with both accesses' logical positions (vthread and per-vthread event
//! index). Instrumented commit protocols can additionally report
//! [`Violation::Protocol`] findings (e.g. a transaction log committed over a
//! view it no longer validates against) via [`report_protocol`].
//!
//! Everything in this module is driven through thread-locals on the
//! participating threads — there is no process-global session state, so
//! concurrent tests in the same binary cannot observe each other's
//! explorations (callers that share *other* process globals must still
//! serialize themselves).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// How long a vthread waits for the run token before declaring the virtual
/// schedule deadlocked. Generous: real schedules hand the token over in
/// microseconds; only a bug in the instrumentation (or a panic on the token
/// holder) leaves a waiter stranded.
const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(30);

std::thread_local! {
    /// The virtual-thread identity of the current OS thread, when it is
    /// participating in an exploration. `None` on every other thread, which
    /// is what keeps the instrumentation hooks inert outside [`explore`].
    static VTHREAD: RefCell<Option<VtCtx>> = const { RefCell::new(None) };
}

struct VtCtx {
    session: Arc<Session>,
    id: usize,
}

/// `true` when the calling thread is a virtual thread of an active
/// exploration. The instrumentation hooks (and the fork/map interception in
/// the parent crate) key off this.
#[must_use]
pub fn on_vthread() -> bool {
    VTHREAD.with(|slot| slot.borrow().is_some())
}

fn with_ctx<R>(f: impl FnOnce(&Arc<Session>, usize) -> R) -> Option<R> {
    VTHREAD.with(|slot| {
        let borrow = slot.borrow();
        borrow.as_ref().map(|ctx| f(&ctx.session, ctx.id))
    })
}

/// The kind of yield point a vthread is parked at — recorded into event
/// labels and useful when reading violation reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YieldKind {
    /// A `join_with_cost` fork just made a child vthread runnable.
    Fork,
    /// A work-queue pop inside `map_with`/`map_with_cost`.
    Pop,
    /// A speculative overlay write (`TableTxn::set_on`).
    SpecWrite,
    /// A `TxnLog::validate` boundary.
    Validate,
    /// A commit boundary (`commit_into` / `splice_log`).
    Commit,
}

/// A logical memory location tracked by the happens-before detector. The
/// instrumented crate chooses the encoding; the detector only compares keys
/// for equality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellId {
    /// Namespace discriminant (e.g. 0 = table cell, 1 = row, 2 = column
    /// structure).
    pub kind: u32,
    /// First coordinate (e.g. job id).
    pub a: u64,
    /// Second coordinate (e.g. column key), 0 when unused.
    pub b: u64,
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell(kind={}, a={}, b={})", self.kind, self.a, self.b)
    }
}

/// One recorded access for a violation report: which vthread, at which
/// per-vthread event index, doing what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessInfo {
    /// Virtual thread id (0 is the exploration root).
    pub vthread: usize,
    /// Per-vthread logical event index at the time of the access.
    pub event: u64,
    /// `true` for a write.
    pub is_write: bool,
    /// Call-site label supplied by the instrumentation.
    pub label: &'static str,
}

impl fmt::Display for AccessInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} `{}` at vthread {} event {}",
            if self.is_write { "write" } else { "read" },
            self.label,
            self.vthread,
            self.event
        )
    }
}

/// A finding from one explored schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two accesses to the same cell, at least one a write, that the vector
    /// clocks could not order.
    Race {
        /// The contended location.
        cell: CellId,
        /// The earlier recorded access.
        first: AccessInfo,
        /// The access that exposed the conflict.
        second: AccessInfo,
    },
    /// An instrumented protocol invariant failed (see [`report_protocol`]).
    Protocol {
        /// Instrumentation-supplied description of the broken invariant.
        detail: String,
        /// The vthread that tripped the check.
        vthread: usize,
        /// That vthread's logical event index.
        event: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Race {
                cell,
                first,
                second,
            } => write!(f, "data race on {cell}: {first} is unordered with {second}"),
            Violation::Protocol {
                detail,
                vthread,
                event,
            } => write!(
                f,
                "protocol violation at vthread {vthread} event {event}: {detail}"
            ),
        }
    }
}

/// How [`explore`] walks the schedule space.
#[derive(Clone, Debug)]
pub enum Mode {
    /// Depth-first enumeration of every schedule (bounded by
    /// [`ExploreConfig::max_schedules`]).
    Exhaustive,
    /// `schedules` seeded random walks. Schedule `i` draws its choices from
    /// splitmix64 seeded with `mix(seed, i)`, so it replays from the pair.
    Random {
        /// Base seed; printed in reports for reproduction.
        seed: u64,
        /// Number of walks to run.
        schedules: usize,
    },
    /// Force one recorded choice trace (out-of-range or exhausted entries
    /// fall back to choice 0).
    Replay(
        /// The choice trace, one entry per choice point.
        Vec<u8>,
    ),
}

/// Configuration for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Schedule-space walk strategy.
    pub mode: Mode,
    /// Hard cap on executed schedules (safety valve for exhaustive mode).
    pub max_schedules: usize,
}

impl ExploreConfig {
    /// Exhaustive enumeration capped at `max_schedules`.
    #[must_use]
    pub fn exhaustive(max_schedules: usize) -> Self {
        ExploreConfig {
            mode: Mode::Exhaustive,
            max_schedules,
        }
    }

    /// `schedules` random walks from `seed`.
    #[must_use]
    pub fn random(seed: u64, schedules: usize) -> Self {
        ExploreConfig {
            mode: Mode::Random { seed, schedules },
            max_schedules: schedules,
        }
    }

    /// Replay exactly one recorded choice trace.
    #[must_use]
    pub fn replay(choices: Vec<u8>) -> Self {
        ExploreConfig {
            mode: Mode::Replay(choices),
            max_schedules: 1,
        }
    }
}

/// The outcome of an [`explore`] call.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: usize,
    /// `true` when exhaustive mode enumerated the whole space within the
    /// schedule cap (always `false` for the other modes... unless they ran
    /// a space with no choice points at all, which is also exhaustive).
    pub exhausted: bool,
    /// Violations from the first schedule that produced any. Later
    /// schedules keep running (to count the space) but do not accumulate.
    pub violations: Vec<Violation>,
    /// The choice trace of the first violating schedule — feed it back to
    /// [`ExploreConfig::replay`] to reproduce the finding deterministically.
    pub failing_trace: Option<Vec<u8>>,
    /// For random mode: the per-schedule seed of the first violating
    /// schedule, reproducible as `ExploreConfig::random(seed, 1)`.
    pub failing_seed: Option<u64>,
    /// The longest choice trace seen across all schedules.
    pub max_choice_points: usize,
}

impl Report {
    /// `true` when no schedule produced a violation.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The virtual scheduler.
// ---------------------------------------------------------------------------

struct VThread {
    /// Lamport vector clock, indexed by vthread id.
    clock: Vec<u64>,
    /// Logical event counter (bumped at every yield/access), for reports.
    events: u64,
    /// Finished running its closure (token never returns to it).
    finished: bool,
    /// Parked in a join on this child (not schedulable until it finishes).
    blocked_on: Option<usize>,
}

/// Per-cell access history for the happens-before detector. Each recorded
/// access carries its clock stamp: `(info, thread, clock[thread] at access
/// time)`. An access happened-before the current moment on thread `t` iff
/// `t`'s clock entry for the access's thread has reached that stamp.
#[derive(Default)]
struct CellHistory {
    last_write: Option<(AccessInfo, usize, u64)>,
    /// Reads since the last write, at most one per vthread.
    reads: Vec<(AccessInfo, usize, u64)>,
}

struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives the per-schedule seed for random mode — exposed to keep "replay
/// schedule `i` of base seed `s`" a one-liner for callers.
#[must_use]
pub fn schedule_seed(base: u64, index: u64) -> u64 {
    let mut mix = SplitMix::new(base ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d));
    mix.next()
}

/// Drives the choices of one schedule execution.
struct Controller {
    /// Forced prefix (DFS backtracking or replay).
    prefix: Vec<u8>,
    /// Random source for choices past the prefix (`None` = always 0).
    rng: Option<SplitMix>,
    /// Recorded `(options, chosen)` for every choice point this run.
    trace: Vec<(u8, u8)>,
}

impl Controller {
    fn choose(&mut self, options: usize) -> usize {
        debug_assert!(options >= 2);
        let position = self.trace.len();
        let chosen = if position < self.prefix.len() {
            usize::from(self.prefix[position]).min(options - 1)
        } else if let Some(rng) = &mut self.rng {
            (rng.next() % options as u64) as usize
        } else {
            0
        };
        self.trace.push((options as u8, chosen as u8));
        chosen
    }

    fn choices(&self) -> Vec<u8> {
        self.trace.iter().map(|&(_, chosen)| chosen).collect()
    }

    /// DFS backtrack: bump the last choice with an untried alternative into
    /// a new forced prefix. `None` when the space is exhausted.
    fn next_prefix(&self) -> Option<Vec<u8>> {
        for (position, &(options, chosen)) in self.trace.iter().enumerate().rev() {
            if chosen + 1 < options {
                let mut prefix: Vec<u8> = self.trace[..position].iter().map(|&(_, c)| c).collect();
                prefix.push(chosen + 1);
                return Some(prefix);
            }
        }
        None
    }
}

struct SessionState {
    threads: Vec<VThread>,
    /// The vthread currently holding the run token.
    current: usize,
    controller: Controller,
    cells: HashMap<CellId, CellHistory>,
    violations: Vec<Violation>,
}

struct Session {
    state: Mutex<SessionState>,
    token: Condvar,
}

impl Session {
    fn new(controller: Controller) -> Self {
        let root = VThread {
            clock: vec![1],
            events: 0,
            finished: false,
            blocked_on: None,
        };
        Session {
            state: Mutex::new(SessionState {
                threads: vec![root],
                current: 0,
                controller,
                cells: HashMap::new(),
                violations: Vec::new(),
            }),
            token: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SessionState> {
        self.state.lock().expect("race session mutex poisoned")
    }

    /// Every vthread that could legally receive the token right now.
    fn runnable(state: &SessionState) -> Vec<usize> {
        state
            .threads
            .iter()
            .enumerate()
            .filter(|(_, thread)| {
                if thread.finished {
                    return false;
                }
                match thread.blocked_on {
                    Some(child) => state.threads[child].finished,
                    None => true,
                }
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Pick the next token holder among the runnable vthreads (consulting
    /// the controller only at genuine choice points) and wake it.
    fn hand_over(&self, state: &mut SessionState) {
        let runnable = Self::runnable(state);
        assert!(
            !runnable.is_empty(),
            "virtual scheduler deadlock: no runnable vthread \
             (an instrumented join is waiting on a child that never finishes)"
        );
        let next = if runnable.len() == 1 {
            runnable[0]
        } else {
            runnable[state.controller.choose(runnable.len())]
        };
        state.current = next;
        self.token.notify_all();
    }

    /// Park until this vthread holds the token again.
    fn wait_for_token<'s>(
        &'s self,
        mut state: MutexGuard<'s, SessionState>,
        me: usize,
    ) -> MutexGuard<'s, SessionState> {
        while state.current != me {
            let (guard, timeout) = self
                .token
                .wait_timeout(state, DEADLOCK_TIMEOUT)
                .expect("race session mutex poisoned");
            state = guard;
            assert!(
                !(timeout.timed_out() && state.current != me),
                "virtual scheduler deadlock: vthread {me} starved of the run \
                 token for {DEADLOCK_TIMEOUT:?} (token holder likely panicked)"
            );
        }
        state
    }

    /// A cooperative yield: offer the token to any runnable vthread (self
    /// included) and park until it comes back.
    fn yield_at(&self, me: usize, _kind: YieldKind) {
        let mut state = self.lock();
        state.threads[me].events += 1;
        self.hand_over(&mut state);
        drop(self.wait_for_token(state, me));
    }

    /// Register a child vthread forked by `parent`. Fork edge: the child
    /// starts with a copy of the parent's clock plus its own new component;
    /// the parent ticks its own component so later parent events are not
    /// ordered before the child's.
    fn register_child(&self, parent: usize) -> usize {
        let mut state = self.lock();
        let child = state.threads.len();
        let mut clock = state.threads[parent].clock.clone();
        clock.resize(child + 1, 0);
        clock[child] = 1;
        state.threads.push(VThread {
            clock,
            events: 0,
            finished: false,
            blocked_on: None,
        });
        let parent_thread = &mut state.threads[parent];
        parent_thread.clock[parent] += 1;
        child
    }

    /// Called on the child's OS thread: park until the scheduler hands it
    /// the token for the first time. The child is schedulable from
    /// [`Self::register_child`] on — if the scheduler picks it before the OS
    /// thread physically arrives, everyone simply waits here for the
    /// handoff, so the *logical* schedule never depends on spawn timing.
    fn start_child(&self, child: usize) {
        let state = self.lock();
        drop(self.wait_for_token(state, child));
    }

    /// Called on the child's OS thread when its closure is done (or
    /// unwinding): release the token. The join edge in [`Self::join_child`]
    /// does the clock merge.
    fn finish(&self, child: usize) {
        let mut state = self.lock();
        state.threads[child].finished = true;
        state.threads[child].events += 1;
        self.hand_over(&mut state);
    }

    /// Called on the parent: park until `child` finished (releasing the
    /// token while parked), then merge the child's clock — the join edge.
    fn join_child(&self, parent: usize, child: usize) {
        let mut state = self.lock();
        if !state.threads[child].finished {
            state.threads[parent].blocked_on = Some(child);
            self.hand_over(&mut state);
            state = self.wait_for_token(state, parent);
            state.threads[parent].blocked_on = None;
        }
        let child_clock = state.threads[child].clock.clone();
        let parent_thread = &mut state.threads[parent];
        if parent_thread.clock.len() < child_clock.len() {
            parent_thread.clock.resize(child_clock.len(), 0);
        }
        for (mine, theirs) in parent_thread.clock.iter_mut().zip(child_clock) {
            *mine = (*mine).max(theirs);
        }
        parent_thread.clock[parent] += 1;
    }

    /// `true` when `stamp` (an event on `thread`) happened-before the
    /// current moment on `observer`.
    fn ordered(state: &SessionState, observer: usize, thread: usize, stamp: u64) -> bool {
        state.threads[observer]
            .clock
            .get(thread)
            .copied()
            .unwrap_or(0)
            >= stamp
    }

    fn record_access(&self, me: usize, cell: CellId, is_write: bool, label: &'static str) {
        let mut state = self.lock();
        state.threads[me].events += 1;
        let access = AccessInfo {
            vthread: me,
            event: state.threads[me].events,
            is_write,
            label,
        };
        let stamp = state.threads[me].clock[me];
        // Check the existing history for unordered conflicts first, then
        // fold the new access in.
        let mut found: Vec<Violation> = Vec::new();
        if let Some(history) = state.cells.get(&cell) {
            let mut check = |first: &AccessInfo, thread: usize, first_stamp: u64| {
                if thread != me && !Self::ordered(&state, me, thread, first_stamp) {
                    found.push(Violation::Race {
                        cell,
                        first: first.clone(),
                        second: access.clone(),
                    });
                }
            };
            if let Some((write, thread, write_stamp)) = &history.last_write {
                check(write, *thread, *write_stamp);
            }
            if is_write {
                for (read, thread, read_stamp) in &history.reads {
                    check(read, *thread, *read_stamp);
                }
            }
        }
        let history = state.cells.entry(cell).or_default();
        if is_write {
            history.last_write = Some((access, me, stamp));
            history.reads.clear();
        } else {
            history.reads.retain(|(_, thread, _)| *thread != me);
            history.reads.push((access, me, stamp));
        }
        state.violations.append(&mut found);
    }

    fn record_protocol(&self, me: usize, detail: String) {
        let mut state = self.lock();
        state.threads[me].events += 1;
        let event = state.threads[me].events;
        state.violations.push(Violation::Protocol {
            detail,
            vthread: me,
            event,
        });
    }
}

/// Clears the vthread identity of the current OS thread on drop, even when
/// the body unwinds.
struct CtxGuard;

impl Drop for CtxGuard {
    fn drop(&mut self) {
        VTHREAD.with(|slot| slot.borrow_mut().take());
    }
}

fn install_ctx(session: Arc<Session>, id: usize) -> CtxGuard {
    VTHREAD.with(|slot| {
        let mut borrow = slot.borrow_mut();
        assert!(
            borrow.is_none(),
            "nested race explorations on one thread are not supported"
        );
        *borrow = Some(VtCtx { session, id });
    });
    CtxGuard
}

/// Marks a child vthread finished on drop, so the scheduler releases its
/// parent even when the child's closure panics.
struct FinishGuard<'s> {
    session: &'s Session,
    id: usize,
}

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.session.finish(self.id);
    }
}

// ---------------------------------------------------------------------------
// Instrumentation hooks (called from the instrumented crates).
// ---------------------------------------------------------------------------

/// Cooperative yield: a no-op off a vthread; on a vthread, offers the run
/// token to every runnable vthread and parks until it returns.
pub fn yield_point(kind: YieldKind) {
    with_ctx(|session, me| session.yield_at(me, kind));
}

/// Record a logical read of `cell` for happens-before checking. No-op off a
/// vthread.
pub fn read_cell(cell: CellId, label: &'static str) {
    with_ctx(|session, me| session.record_access(me, cell, false, label));
}

/// Record a logical write of `cell` for happens-before checking. No-op off a
/// vthread.
pub fn write_cell(cell: CellId, label: &'static str) {
    with_ctx(|session, me| session.record_access(me, cell, true, label));
}

/// Report a broken protocol invariant (e.g. a stale transaction log
/// committed without validation). No-op off a vthread.
pub fn report_protocol(detail: String) {
    with_ctx(|session, me| session.record_protocol(me, detail));
}

/// The virtual counterpart of [`join_with_cost`](crate::join_with_cost):
/// runs `b` on a child vthread under the scheduler, `a` on the caller, with
/// the same budget split as the real fork. Only call on a vthread with
/// `budget >= 2` (the parent crate's interception guarantees both).
pub(crate) fn fork_join<RA, RB, A, B>(
    budget: usize,
    cost_a: u64,
    cost_b: u64,
    a: A,
    b: B,
) -> (RA, RB)
where
    RB: Send,
    A: FnOnce(usize) -> RA,
    B: FnOnce(usize) -> RB + Send,
{
    let budget_b = crate::split_budget(budget, cost_a, cost_b);
    let budget_a = budget - budget_b;
    let (session, parent) =
        with_ctx(|session, id| (Arc::clone(session), id)).expect("fork_join called off a vthread");
    let child = session.register_child(parent);
    std::thread::scope(|scope| {
        let child_session = Arc::clone(&session);
        let handle = scope.spawn(move || {
            let _ctx = install_ctx(Arc::clone(&child_session), child);
            child_session.start_child(child);
            let _finish = FinishGuard {
                session: &child_session,
                id: child,
            };
            b(budget_b)
        });
        // The child is registered but unscheduled; this yield is the fork
        // choice point where it first competes for the token.
        session.yield_at(parent, YieldKind::Fork);
        let ra = a(budget_a);
        session.join_child(parent, child);
        let rb = handle
            .join()
            .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
        (ra, rb)
    })
}

// ---------------------------------------------------------------------------
// The explorer.
// ---------------------------------------------------------------------------

fn run_one(controller: Controller, body: &(impl Fn() + Sync)) -> (Controller, Vec<Violation>) {
    let session = Arc::new(Session::new(controller));
    {
        let _ctx = install_ctx(Arc::clone(&session), 0);
        body();
    }
    let session = Arc::try_unwrap(session)
        .map_err(|_| ())
        .expect("all vthreads have exited the session");
    let state = session.state.into_inner().expect("session mutex poisoned");
    (state.controller, state.violations)
}

/// Runs `body` repeatedly under the virtual scheduler, walking the schedule
/// space as configured. The first violating schedule's findings (and its
/// reproduction handle) are captured in the [`Report`]; later schedules
/// still execute so the schedule count stays meaningful.
///
/// `body` must be deterministic given the schedule (no ambient randomness or
/// real time) — that is what makes every reported schedule replayable.
pub fn explore(config: &ExploreConfig, body: impl Fn() + Sync) -> Report {
    let mut report = Report {
        schedules: 0,
        exhausted: false,
        violations: Vec::new(),
        failing_trace: None,
        failing_seed: None,
        max_choice_points: 0,
    };
    match &config.mode {
        Mode::Exhaustive => {
            let mut prefix: Vec<u8> = Vec::new();
            loop {
                if report.schedules >= config.max_schedules {
                    break;
                }
                let controller = Controller {
                    prefix,
                    rng: None,
                    trace: Vec::new(),
                };
                let (controller, violations) = run_one(controller, &body);
                report.schedules += 1;
                report.max_choice_points = report.max_choice_points.max(controller.trace.len());
                if report.violations.is_empty() && !violations.is_empty() {
                    report.failing_trace = Some(controller.choices());
                    report.violations = violations;
                }
                match controller.next_prefix() {
                    Some(next) => prefix = next,
                    None => {
                        report.exhausted = true;
                        break;
                    }
                }
            }
        }
        Mode::Random { seed, schedules } => {
            for index in 0..(*schedules).min(config.max_schedules) {
                let schedule_seed = schedule_seed(*seed, index as u64);
                let controller = Controller {
                    prefix: Vec::new(),
                    rng: Some(SplitMix::new(schedule_seed)),
                    trace: Vec::new(),
                };
                let (controller, violations) = run_one(controller, &body);
                report.schedules += 1;
                report.max_choice_points = report.max_choice_points.max(controller.trace.len());
                if report.violations.is_empty() && !violations.is_empty() {
                    report.failing_trace = Some(controller.choices());
                    report.failing_seed = Some(schedule_seed);
                    report.violations = violations;
                }
            }
        }
        Mode::Replay(choices) => {
            let controller = Controller {
                prefix: choices.clone(),
                rng: None,
                trace: Vec::new(),
            };
            let (controller, violations) = run_one(controller, &body);
            report.schedules = 1;
            report.max_choice_points = controller.trace.len();
            if !violations.is_empty() {
                report.failing_trace = Some(controller.choices());
                report.violations = violations;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Two vthreads each doing one Pop yield: the schedule space is the
    /// interleavings of their yield sequences.
    #[test]
    fn exhaustive_enumerates_a_two_thread_fork() {
        let report = explore(&ExploreConfig::exhaustive(10_000), || {
            crate::join_with_cost(
                2,
                1,
                1,
                |_| {
                    yield_point(YieldKind::Pop);
                    yield_point(YieldKind::Pop);
                },
                |_| {
                    yield_point(YieldKind::Pop);
                    yield_point(YieldKind::Pop);
                },
            );
        });
        assert!(report.exhausted, "space must be fully enumerated");
        assert!(
            report.schedules >= 2,
            "a fork with yields has more than one schedule, got {}",
            report.schedules
        );
        assert!(report.clean(), "no races reported: {:?}", report.violations);
    }

    #[test]
    fn exhaustive_explores_both_fork_orders() {
        // Record which side ran its first yield-free section first; over the
        // whole space both orders must occur.
        let orders = Mutex::new(std::collections::HashSet::new());
        let report = explore(&ExploreConfig::exhaustive(10_000), || {
            let log = Mutex::new(Vec::new());
            crate::join_with_cost(
                2,
                1,
                1,
                |_| {
                    yield_point(YieldKind::Pop);
                    log.lock().unwrap().push('a');
                },
                |_| {
                    yield_point(YieldKind::Pop);
                    log.lock().unwrap().push('b');
                },
            );
            let sequence: String = log.lock().unwrap().iter().collect();
            orders.lock().unwrap().insert(sequence);
        });
        assert!(report.exhausted);
        let orders = orders.into_inner().unwrap();
        assert!(
            orders.contains("ab") && orders.contains("ba"),
            "both interleavings must be reachable, saw {orders:?}"
        );
    }

    #[test]
    fn unsynchronized_write_write_is_flagged() {
        let cell = CellId {
            kind: 0,
            a: 7,
            b: 9,
        };
        let report = explore(&ExploreConfig::exhaustive(1_000), || {
            crate::join_with_cost(
                2,
                1,
                1,
                |_| write_cell(cell, "left"),
                |_| write_cell(cell, "right"),
            );
        });
        assert!(
            !report.clean(),
            "sibling writes to one cell are unordered and must be reported"
        );
        let trace = report.failing_trace.expect("failing trace recorded");
        let replayed = explore(&ExploreConfig::replay(trace), || {
            crate::join_with_cost(
                2,
                1,
                1,
                |_| write_cell(cell, "left"),
                |_| write_cell(cell, "right"),
            );
        });
        assert!(!replayed.clean(), "replayed schedule reproduces the race");
    }

    #[test]
    fn fork_and_join_edges_order_parent_child_accesses() {
        let cell = CellId {
            kind: 0,
            a: 1,
            b: 2,
        };
        let report = explore(&ExploreConfig::exhaustive(1_000), || {
            // Parent writes before the fork and after the join: both are
            // ordered with the child's read by the fork/join edges.
            write_cell(cell, "before-fork");
            crate::join_with_cost(2, 1, 1, |_| (), |_| read_cell(cell, "child-read"));
            write_cell(cell, "after-join");
        });
        assert!(report.exhausted);
        assert!(
            report.clean(),
            "fork/join-ordered accesses are not races: {:?}",
            report.violations
        );
    }

    #[test]
    fn sibling_read_and_write_race_is_flagged_and_parent_read_is_not() {
        let cell = CellId {
            kind: 1,
            a: 3,
            b: 0,
        };
        let racy = explore(&ExploreConfig::exhaustive(1_000), || {
            crate::join_with_cost(
                2,
                1,
                1,
                |_| read_cell(cell, "sibling-read"),
                |_| write_cell(cell, "sibling-write"),
            );
        });
        assert!(!racy.clean(), "sibling read/write must be reported");

        let ordered = explore(&ExploreConfig::exhaustive(1_000), || {
            crate::join_with_cost(2, 1, 1, |_| (), |_| write_cell(cell, "child-write"));
            read_cell(cell, "parent-read-after-join");
        });
        assert!(
            ordered.clean(),
            "join edge orders the child's write before the parent's read: {:?}",
            ordered.violations
        );
    }

    #[test]
    fn random_mode_reproduces_from_its_seed() {
        let cell = CellId {
            kind: 0,
            a: 0,
            b: 0,
        };
        let body = || {
            crate::join_with_cost(
                2,
                1,
                1,
                |_| write_cell(cell, "left"),
                |_| write_cell(cell, "right"),
            );
        };
        let report = explore(&ExploreConfig::random(0xDECAF, 8), body);
        assert!(!report.clean());
        let seed = report.failing_seed.expect("random mode records the seed");
        let reproduced = explore(
            &ExploreConfig {
                mode: Mode::Random { seed, schedules: 1 },
                max_schedules: 1,
            },
            body,
        );
        assert!(
            !reproduced.clean(),
            "the recorded per-schedule seed must reproduce the finding"
        );
    }

    #[test]
    fn nested_forks_schedule_three_vthreads() {
        let seen = AtomicU64::new(0);
        let report = explore(&ExploreConfig::exhaustive(100_000), || {
            crate::join_with_cost(
                3,
                1,
                2,
                |_| {
                    yield_point(YieldKind::Pop);
                },
                |budget| {
                    crate::join_with_cost(
                        budget,
                        1,
                        1,
                        |_| yield_point(YieldKind::Pop),
                        |_| yield_point(YieldKind::Pop),
                    );
                },
            );
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert!(report.exhausted, "three-vthread space stays enumerable");
        assert_eq!(seen.load(Ordering::Relaxed) as usize, report.schedules);
        assert!(report.schedules >= 3);
        assert!(report.clean());
    }

    #[test]
    fn protocol_reports_surface_with_logical_position() {
        let report = explore(&ExploreConfig::exhaustive(10), || {
            report_protocol("stale commit".to_string());
        });
        assert_eq!(report.violations.len(), 1);
        match &report.violations[0] {
            Violation::Protocol {
                detail, vthread, ..
            } => {
                assert_eq!(detail, "stale commit");
                assert_eq!(*vthread, 0);
            }
            other => panic!("expected protocol violation, got {other}"),
        }
    }

    #[test]
    fn map_calls_on_a_vthread_stay_serial_and_yield() {
        // map_with on a vthread must not spawn real workers — everything
        // runs on the root vthread with a Pop yield per item.
        let report = explore(&ExploreConfig::exhaustive(100), || {
            let me = std::thread::current().id();
            let items: Vec<u32> = (0..5).collect();
            let on_me = crate::map_with(
                4,
                &items,
                || (),
                |(), _, _| std::thread::current().id() == me,
            );
            assert!(on_me.into_iter().all(|same| same));
            let on_me = crate::map_with_cost(
                4,
                &items,
                |_, &x| u64::from(x),
                || (),
                |(), _, _| std::thread::current().id() == me,
            );
            assert!(on_me.into_iter().all(|same| same));
        });
        assert!(report.exhausted);
        assert!(report.clean());
    }

    #[test]
    fn exploration_is_deterministic() {
        let body = || {
            crate::join_with_cost(
                2,
                2,
                3,
                |_| {
                    yield_point(YieldKind::Validate);
                    yield_point(YieldKind::Commit);
                },
                |_| {
                    yield_point(YieldKind::SpecWrite);
                },
            );
        };
        let first = explore(&ExploreConfig::exhaustive(10_000), body);
        let second = explore(&ExploreConfig::exhaustive(10_000), body);
        assert_eq!(first.schedules, second.schedules);
        assert_eq!(first.exhausted, second.exhausted);
        assert_eq!(first.max_choice_points, second.max_choice_points);
    }
}
